//! Fans campaign scenarios through the experiment [`Engine`] — serially or
//! across a work-stealing shard pool — memoizing by `(seed,
//! scenario-digest)` and resuming from a persisted [`ResultStore`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use baselines::TrainConfig;
use bayesft::{DriftObjective, Engine, RunReport, SharedDropoutSpace};
use datasets::ClassificationDataset;
use models::{Mlp, MlpConfig};
use nn::Layer;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::mix_seed;

use crate::{Campaign, CampaignError, ResultStore, Scenario, SpaceKind, TaskKind};

/// Seed stream for dataset generation, decorrelated from the engine's
/// suggest/eval streams.
const DATA_STREAM: u64 = 0xda7a;
/// Seed stream for network initialization.
const INIT_STREAM: u64 = 0x1417;
/// Seed stream for the SGD shuffler.
const TRAIN_STREAM: u64 = 0x7124;

/// How one scenario of a campaign went: the (possibly budget-clamped) spec
/// that actually ran, its digest, and the engine's report.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario as executed (after any quick-mode clamping).
    pub scenario: Scenario,
    /// Content digest of [`ScenarioOutcome::scenario`].
    pub digest: String,
    /// The engine's run record, tagged with the scenario metadata.
    pub report: RunReport,
    /// Whether this outcome came from the runner's memo cache instead of
    /// a fresh engine run.
    pub from_cache: bool,
    /// Whether this outcome was replayed from a persisted result store
    /// (`--resume`) instead of a fresh engine run.
    pub from_store: bool,
    /// Wall-clock this campaign spent producing the outcome, in
    /// milliseconds (0 on cache and store hits — serving is free).
    pub wall_ms: f64,
    /// Wall-clock of the engine run that *originally* computed the
    /// result, in milliseconds. Equal to [`ScenarioOutcome::wall_ms`] for
    /// fresh runs and preserved across cache/store hits, so timing history
    /// survives memoization and resume.
    pub compute_wall_ms: f64,
    /// Index of the shard that produced the outcome (0 for serial runs).
    pub shard: usize,
}

/// One entry of [`CampaignRunner::run_campaign`]'s result list: scenarios
/// fail individually, never the whole campaign.
#[derive(Debug)]
pub struct ScenarioRun {
    /// Scenario name as written in the campaign file.
    pub name: String,
    /// Index of the scenario in the campaign.
    pub index: usize,
    /// Scenario count of the campaign.
    pub total: usize,
    /// The outcome, or why this scenario could not run.
    pub result: Result<ScenarioOutcome, CampaignError>,
}

/// Per-call controls for a campaign run: cooperative cancellation and a
/// progress observer. [`RunControl::default`] is the plain uncontrolled
/// run that [`CampaignRunner::run_campaign_report`] uses.
#[derive(Default, Clone, Copy)]
pub struct RunControl<'a> {
    /// Checked by every shard between scenarios: once set, shards stop
    /// pulling work, the report comes back [`CampaignReport::cancelled`],
    /// and the store keeps the completed campaign-order prefix (the same
    /// resumable state a crash leaves, reached gracefully).
    ///
    /// Ordering: `Relaxed` — cancellation is advisory; a shard that
    /// misses one update starts at most one more scenario, which the
    /// resumable-prefix semantics already tolerate.
    pub cancel: Option<&'a AtomicBool>,
    /// Called once per finished scenario — from whichever shard finished
    /// it, in completion (not campaign) order — before the run is
    /// persisted. The campaign service streams these to `watch`
    /// subscribers.
    pub observer: Option<&'a (dyn Fn(&ScenarioRun) + Sync)>,
}

/// Campaign-level progress and cost accounting, produced by
/// [`CampaignRunner::run_campaign_report`].
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-scenario results, in campaign order.
    pub runs: Vec<ScenarioRun>,
    /// Scenario count of the campaign.
    pub total: usize,
    /// Scenarios that produced an outcome (fresh, cache-, or
    /// store-served).
    pub completed: usize,
    /// Scenarios that failed.
    pub failed: usize,
    /// Outcomes served from the in-process memo cache.
    pub cache_served: usize,
    /// Outcomes served from a persisted store (`--resume`).
    pub store_served: usize,
    /// Scenarios this process did not own under its
    /// [`CampaignRunner::shard_of`] slice (they belong to sibling
    /// processes and appear in neither [`CampaignReport::runs`] nor the
    /// store).
    pub skipped: usize,
    /// Whether a [`RunControl::cancel`] request stopped the campaign
    /// before every owned scenario ran. The completed campaign-order
    /// prefix is persisted; the rest is absent from
    /// [`CampaignReport::runs`].
    pub cancelled: bool,
    /// Shard count the campaign actually ran with.
    pub shards: usize,
    /// Wall-clock each shard spent pulling scenarios, in milliseconds.
    pub shard_wall_ms: Vec<f64>,
    /// End-to-end campaign wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Warnings surfaced while loading the resume store (truncated
    /// trailing lines, unreplayable records).
    pub warnings: Vec<String>,
}

/// A persisted record eligible to be served instead of recomputed, parsed
/// once at [`CampaignRunner::resume_from`] time.
#[derive(Debug, Clone)]
struct ResumeEntry {
    report: RunReport,
    compute_wall_ms: f64,
}

/// One campaign-order scenario slot of a run in progress.
enum Slot {
    /// Owned by this process but not finished yet.
    Pending,
    /// Not owned under the active [`CampaignRunner::shard_of`] slice — a
    /// sibling process runs it; the persist cursor steps over it.
    Skipped,
    /// Finished (successfully or not).
    Done(Box<ScenarioRun>),
}

/// Tracks completed scenario slots and the contiguous prefix already
/// persisted, so outcomes computed in any shard order land in the store in
/// campaign order.
struct PersistState<'a> {
    slots: Vec<Slot>,
    cursor: usize,
    store: Option<&'a ResultStore>,
    error: Option<CampaignError>,
}

impl PersistState<'_> {
    /// Appends every completed-but-unpersisted slot from the cursor
    /// forward. Failed scenarios and shard-skipped slots advance the
    /// cursor without a record, and store-served outcomes are re-appended
    /// (cheaply) so one `run` always contributes a full campaign-ordered
    /// suffix of the scenarios it owns.
    ///
    /// Once an append has failed, persistence stops for good: retrying
    /// the same cursor could concatenate a fresh record onto the earlier
    /// partially-written line and turn a recoverable truncated tail into
    /// fatal mid-file corruption.
    fn flush_prefix(&mut self, campaign: &Campaign) -> Result<(), CampaignError> {
        if self.error.is_some() {
            return Ok(());
        }
        while let Some(slot) = self.slots.get(self.cursor) {
            match slot {
                Slot::Pending => break,
                Slot::Skipped => {}
                Slot::Done(run) => {
                    if let (Some(store), Ok(outcome)) = (self.store, &run.result) {
                        store.append(&campaign.name, outcome)?;
                    }
                }
            }
            self.cursor += 1;
        }
        Ok(())
    }
}

/// Runs scenarios through the [`Engine`] with per-`(seed, digest)`
/// memoization, optional store-backed resume, and a work-stealing shard
/// pool.
///
/// Scenario runs are deterministic in the scenario spec: the same
/// `(seed, digest)` pair always yields a bit-identical
/// [`RunReport::deterministic_eq`] record, for any `parallelism`, any
/// `shards` count, and whether the memo cache, a resume store, or a fresh
/// engine run served it.
///
/// # Example
///
/// ```no_run
/// use scenarios::{Campaign, CampaignRunner, Scenario};
///
/// let campaign = Campaign::new(
///     "demo",
///     vec![Scenario::new("ln", vec!["lognormal:0.3".parse().unwrap()])],
/// );
/// let runner = CampaignRunner::new().shards(4);
/// for run in runner.run_campaign(&campaign) {
///     let outcome = run.result.expect("scenario failed");
///     println!("{}: α* = {:?}", run.name, outcome.report.best_alpha);
/// }
/// ```
///
/// # Lock order
///
/// `in_flight` → `cache`, never the reverse: the scenario executor
/// holds `in_flight` while probing/claiming and takes `cache` briefly
/// inside that window; the post-compute `cache` insert holds no other
/// lock. The [`ResultStore`] file lock is a leaf taken only under the
/// campaign persist-state mutex (one `flush_prefix` at a time) — it is
/// never requested while `cache` is held, so store I/O can never stall
/// a cache probe. The lock-discipline lint (R5) recovers these edges
/// and fails the build on a cycle.
#[derive(Debug, Default)]
pub struct CampaignRunner {
    parallelism: usize,
    shards: usize,
    shard_slice: Option<(usize, usize)>,
    quick: bool,
    cache: Mutex<HashMap<(u64, String), ScenarioOutcome>>,
    /// `(seed, digest)` keys currently being computed by some shard;
    /// content-aliased scenarios wait on [`CampaignRunner::in_flight_cv`]
    /// instead of duplicating the engine run.
    in_flight: Mutex<HashSet<(u64, String)>>,
    in_flight_cv: Condvar,
    resume: HashMap<(u64, String), ResumeEntry>,
    resume_warnings: Vec<String>,
}

impl CampaignRunner {
    /// A serial, full-budget runner.
    pub fn new() -> Self {
        CampaignRunner {
            parallelism: 1,
            shards: 1,
            shard_slice: None,
            quick: false,
            cache: Mutex::new(HashMap::new()),
            in_flight: Mutex::new(HashSet::new()),
            in_flight_cv: Condvar::new(),
            resume: HashMap::new(),
            resume_warnings: Vec::new(),
        }
    }

    /// Sets the Monte-Carlo worker-thread budget (`0` = one per core).
    /// Results are bit-identical for every setting.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Sets how many scenario shards pull from the campaign's shared work
    /// queue (`0` = one per core). Scenarios are deterministic in their
    /// own seeds, so outcomes are bit-identical to the serial path for
    /// every setting; they are reported and persisted in campaign order
    /// regardless of completion order.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Restricts this runner to one **cross-process** shard of every
    /// campaign it runs: of a campaign's scenarios, this process owns
    /// those whose campaign index `i` satisfies `i % count == index`, and
    /// steps over the rest (they are counted as
    /// [`CampaignReport::skipped`], and neither run nor persisted). `count`
    /// independent processes — or hosts — with indices `0..count` over the
    /// same campaign and distinct stores thus partition the work exactly;
    /// `ResultStore::merge_from` reunites their stores into the bytes a
    /// serial run would have produced.
    ///
    /// Scenario positions and digests are computed against the *full*
    /// campaign, so records from different shards are indistinguishable
    /// from a serial run's.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Parse`] when `count` is zero or `index`
    /// is out of range.
    pub fn shard_of(mut self, index: usize, count: usize) -> Result<Self, CampaignError> {
        if count == 0 || index >= count {
            return Err(CampaignError::Parse(format!(
                "shard index {index} out of range for shard count {count}"
            )));
        }
        self.shard_slice = Some((index, count));
        Ok(self)
    }

    /// Clamps every scenario to smoke-test budgets
    /// ([`Scenario::clamped_quick`]) before running — the `BENCH_QUICK=1`
    /// path of the `campaign` CLI.
    pub fn quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Primes the runner with every replayable record of `store`: a
    /// scenario whose `(seed, digest)` is already persisted is served from
    /// the store (marked [`ScenarioOutcome::from_store`]) instead of
    /// recomputed. Records that cannot be replayed (truncated trailing
    /// line, malformed report) are surfaced as warnings on the next
    /// [`CampaignRunner::run_campaign_report`] and recomputed.
    ///
    /// # Errors
    ///
    /// Propagates [`ResultStore::load_lenient`] errors (corrupt
    /// non-trailing lines, I/O failures).
    pub fn resume_from(mut self, store: &ResultStore) -> Result<Self, CampaignError> {
        let (records, mut warnings) = store.load_lenient()?;
        for record in records {
            let key = (record.seed, record.digest.clone());
            let report = record
                .raw
                .get("report")
                .ok_or_else(|| "record is missing 'report'".to_string())
                .and_then(RunReport::from_json);
            match report {
                // Latest record wins, matching compaction.
                Ok(report) => {
                    self.resume.insert(
                        key,
                        ResumeEntry {
                            report,
                            compute_wall_ms: record.compute_wall_ms,
                        },
                    );
                }
                Err(e) => warnings.push(format!(
                    "{}: stored record for scenario '{}' (seed {}) cannot be replayed ({e}); \
                     it will be recomputed",
                    store.path().display(),
                    record.scenario,
                    record.seed,
                )),
            }
        }
        self.resume_warnings.append(&mut warnings);
        Ok(self)
    }

    /// Number of memoized outcomes held.
    pub fn cached_runs(&self) -> usize {
        self.cache.lock().expect("memo cache poisoned").len()
    }

    /// Number of persisted records primed by
    /// [`CampaignRunner::resume_from`].
    pub fn resumable_runs(&self) -> usize {
        self.resume.len()
    }

    /// Runs every scenario of `campaign` and returns the per-scenario
    /// results in campaign order. A failing scenario yields an `Err` entry
    /// and the campaign continues.
    ///
    /// This is [`CampaignRunner::run_campaign_report`] without persistence
    /// or the campaign-level accounting.
    pub fn run_campaign(&self, campaign: &Campaign) -> Vec<ScenarioRun> {
        self.run_campaign_report(campaign, None)
            .expect("a campaign without a store has no persistence failures")
            .runs
    }

    /// Runs every scenario of `campaign` over the shard pool, optionally
    /// persisting each outcome to `store` as soon as its campaign-order
    /// prefix completes (so a crash leaves a resumable prefix, never a
    /// shuffled store).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] if appending to `store` fails; the
    /// shard pool stops pulling new scenarios at the first persistence
    /// failure. Scenario-level failures never abort the campaign — they
    /// are `Err` entries in [`CampaignReport::runs`].
    pub fn run_campaign_report(
        &self,
        campaign: &Campaign,
        store: Option<&ResultStore>,
    ) -> Result<CampaignReport, CampaignError> {
        self.run_campaign_report_with(campaign, store, RunControl::default())
    }

    /// [`CampaignRunner::run_campaign_report`] with cooperative
    /// cancellation and per-scenario progress callbacks — the entry point
    /// the campaign service daemon drives. Takes `&self`, so concurrent
    /// campaigns (different jobs, different worker threads) can share one
    /// runner and its memo cache: content-aliased scenarios across jobs
    /// resolve to a single engine run through the in-flight reservation.
    ///
    /// # Errors
    ///
    /// See [`CampaignRunner::run_campaign_report`].
    pub fn run_campaign_report_with(
        &self,
        campaign: &Campaign,
        store: Option<&ResultStore>,
        ctl: RunControl<'_>,
    ) -> Result<CampaignReport, CampaignError> {
        let total = campaign.scenarios.len();
        let owns = |i: usize| {
            self.shard_slice
                .is_none_or(|(index, count)| i % count == index)
        };
        let owned_total = (0..total).filter(|&i| owns(i)).count();
        let shards = effective_shards(self.shards, owned_total);
        let started = Instant::now();
        let mut warnings = self.resume_warnings.clone();
        if let Some(store) = store {
            // A crashed predecessor may have left a partial trailing line;
            // truncate it so this campaign's appends start on a fresh line.
            if let Some(dropped) = store.drop_partial_tail()? {
                warnings.push(dropped);
            }
        }
        let mut shard_wall_ms = vec![0.0; shards];

        let slots: Vec<Slot> = (0..total)
            .map(|i| {
                if owns(i) {
                    Slot::Pending
                } else {
                    Slot::Skipped
                }
            })
            .collect();
        let state = Mutex::new(PersistState {
            slots,
            cursor: 0,
            store,
            error: None,
        });

        // Work-stealing queue: shards race on an atomic cursor, so a slow
        // scenario never idles the other shards. `exec` is deterministic
        // per scenario, so the interleaving cannot change any outcome.
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    let (next, abort, state, ctl) = (&next, &abort, &state, &ctl);
                    scope.spawn(move || {
                        let shard_start = Instant::now();
                        loop {
                            if abort.load(Ordering::Relaxed)
                                || ctl.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
                            {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            if !owns(i) {
                                continue;
                            }
                            let scenario = &campaign.scenarios[i];
                            let run = ScenarioRun {
                                name: scenario.name.clone(),
                                index: i,
                                total,
                                result: self.exec(scenario, Some((i, total)), shard),
                            };
                            if let Some(observer) = ctl.observer {
                                observer(&run);
                            }
                            let mut st = state.lock().expect("persist state poisoned");
                            st.slots[i] = Slot::Done(Box::new(run));
                            // lint:allow(R5, reason = "slot table and store cursor must advance atomically or a racing shard could append the same prefix row twice; the fsync is the shard's own durability point and contention is bounded by shard count")
                            if let Err(e) = st.flush_prefix(campaign) {
                                st.error.get_or_insert(e);
                                abort.store(true, Ordering::Relaxed);
                            }
                        }
                        shard_start.elapsed().as_secs_f64() * 1e3
                    })
                })
                .collect();
            for (shard, handle) in handles.into_iter().enumerate() {
                shard_wall_ms[shard] = handle.join().expect("campaign shard panicked");
            }
        });

        let state = state.into_inner().expect("persist state poisoned");
        if let Some(e) = state.error {
            return Err(e);
        }
        let mut runs = Vec::with_capacity(owned_total);
        let mut skipped = 0usize;
        let mut pending = 0usize;
        for slot in state.slots {
            match slot {
                Slot::Done(run) => runs.push(*run),
                Slot::Skipped => skipped += 1,
                // Only a cancel can leave an owned slot unrun (a persist
                // failure returned above).
                Slot::Pending => pending += 1,
            }
        }
        let completed = runs.iter().filter(|r| r.result.is_ok()).count();
        let count = |f: fn(&ScenarioOutcome) -> bool| {
            runs.iter()
                .filter_map(|r| r.result.as_ref().ok())
                .filter(|o| f(o))
                .count()
        };
        Ok(CampaignReport {
            total,
            completed,
            failed: runs.len() - completed,
            cache_served: count(|o| o.from_cache),
            store_served: count(|o| o.from_store),
            skipped,
            cancelled: pending > 0,
            shards,
            shard_wall_ms,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            warnings,
            runs,
        })
    }

    /// Runs one scenario (or serves it from the memo cache / resume
    /// store).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Parse`]/[`CampaignError::Fault`] for an
    /// invalid spec and [`CampaignError::Engine`] if the search itself
    /// fails.
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<ScenarioOutcome, CampaignError> {
        self.exec(scenario, None, 0)
    }

    /// The shared scenario path: validate → clamp → memo cache → resume
    /// store → fresh engine run. Takes `&self` so shards can execute
    /// concurrently; the memo cache and in-flight set are behind mutexes.
    fn exec(
        &self,
        scenario: &Scenario,
        position: Option<(usize, usize)>,
        shard: usize,
    ) -> Result<ScenarioOutcome, CampaignError> {
        scenario.validate()?;
        let scenario = if self.quick {
            scenario.clamped_quick()
        } else {
            scenario.clone()
        };
        let digest = scenario.digest();
        let key = (scenario.seed, digest.clone());
        if let Some(entry) = self.resume.get(&key) {
            let mut report = entry.report.clone();
            if let Some(meta) = &mut report.scenario {
                meta.name = scenario.name.clone();
                meta.position = position;
            }
            telemetry::static_counter!("campaign_store_hits_total").inc();
            return Ok(ScenarioOutcome {
                digest,
                report,
                scenario,
                from_cache: false,
                from_store: true,
                wall_ms: 0.0,
                compute_wall_ms: entry.compute_wall_ms,
                shard,
            });
        }
        // Serve from the memo cache, or reserve the key so content-aliased
        // scenarios on other shards wait for this computation instead of
        // duplicating it. The cache check happens *while holding* the
        // in-flight lock: a producing shard inserts the cache entry before
        // releasing its reservation, so under this lock "not cached and
        // not in flight" really means nobody computed or is computing the
        // key. If the computing shard failed (it released the reservation
        // without a cache entry), the first waiter takes over and retries.
        let mut in_flight = self.in_flight.lock().expect("in-flight set poisoned");
        loop {
            if let Some(hit) = self.cache.lock().expect("memo cache poisoned").get(&key) {
                let mut outcome = hit.clone();
                outcome.from_cache = true;
                outcome.from_store = false;
                outcome.wall_ms = 0.0;
                outcome.shard = shard;
                // Memoization is keyed on content, not name: a renamed copy
                // of a cached scenario reuses the evaluation but reports
                // its own name and campaign position.
                outcome.scenario.name = scenario.name.clone();
                if let Some(meta) = &mut outcome.report.scenario {
                    meta.name = scenario.name.clone();
                    meta.position = position;
                }
                telemetry::static_counter!("campaign_cache_hits_total").inc();
                return Ok(outcome);
            }
            if in_flight.insert(key.clone()) {
                break;
            }
            in_flight = self
                .in_flight_cv
                .wait(in_flight)
                .expect("in-flight set poisoned");
        }
        drop(in_flight);
        let result = self.compute(&scenario, &digest, position, shard);
        if let Ok(outcome) = &result {
            self.cache
                .lock()
                .expect("memo cache poisoned")
                .insert(key.clone(), outcome.clone());
        }
        self.in_flight
            .lock()
            .expect("in-flight set poisoned")
            .remove(&key);
        self.in_flight_cv.notify_all();
        result
    }

    /// A fresh engine run for a scenario that neither the cache nor the
    /// resume store could serve. Callers hold the in-flight reservation
    /// for the scenario's `(seed, digest)` key.
    fn compute(
        &self,
        scenario: &Scenario,
        digest: &str,
        position: Option<(usize, usize)>,
        shard: usize,
    ) -> Result<ScenarioOutcome, CampaignError> {
        telemetry::static_counter!("campaign_engine_runs_total").inc();
        let _span = telemetry::Span::enter(
            "campaign.scenario",
            telemetry::duration_histogram!("campaign_scenario_seconds"),
        );
        let scenario = scenario.clone();
        let started = Instant::now();
        let (train, val, mut net) = build_task(&scenario);
        let objective = DriftObjective::from_specs(&scenario.faults, scenario.mc_samples)?;
        let mut builder = Engine::builder()
            .objective(objective)
            .trials(scenario.trials)
            .epochs_per_trial(scenario.epochs_per_trial)
            .final_epochs(scenario.final_epochs)
            .seed(scenario.seed)
            .parallelism(self.parallelism)
            .train(TrainConfig {
                // The engine overrides `epochs` per stage; only the
                // shuffler seed matters here.
                seed: mix_seed(scenario.seed, TRAIN_STREAM),
                ..TrainConfig::default()
            });
        if scenario.space == SpaceKind::Shared {
            builder = builder.space(SharedDropoutSpace::probe(net.as_mut()));
        }
        let result = builder.run(net, &train, &val)?;
        let mut report = result
            .report
            .with_scenario(scenario.name.clone(), digest.to_string());
        if let Some((index, total)) = position {
            report = report.with_campaign_position(index, total);
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        Ok(ScenarioOutcome {
            digest: digest.to_string(),
            report,
            scenario,
            from_cache: false,
            from_store: false,
            wall_ms,
            compute_wall_ms: wall_ms,
            shard,
        })
    }
}

/// Resolves the shard request against the machine and the campaign: `0`
/// means one shard per core, and a campaign never spins up more shards
/// than it has scenarios.
fn effective_shards(requested: usize, total: usize) -> usize {
    let shards = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    shards.clamp(1, total.max(1))
}

/// Builds the train/val splits and a dropout-bearing MLP for a scenario's
/// task, all seeded from decorrelated streams of the scenario seed.
fn build_task(
    scenario: &Scenario,
) -> (ClassificationDataset, ClassificationDataset, Box<dyn Layer>) {
    let mut data_rng = ChaCha8Rng::seed_from_u64(mix_seed(scenario.seed, DATA_STREAM));
    let mut init_rng = ChaCha8Rng::seed_from_u64(mix_seed(scenario.seed, INIT_STREAM));
    let (data, input_dim, classes) = match scenario.task {
        TaskKind::Moons { samples, noise } => {
            (datasets::moons(samples, noise, &mut data_rng), 2, 2)
        }
        TaskKind::Digits { per_class } => (datasets::digits(per_class, &mut data_rng), 14 * 14, 10),
        TaskKind::Shapes { per_class } => {
            (datasets::shapes(per_class, &mut data_rng), 3 * 16 * 16, 10)
        }
    };
    let (train, val) = data.split(0.8, &mut data_rng);
    let hidden = if input_dim <= 2 { 16 } else { 32 };
    let net = Box::new(Mlp::new(
        &MlpConfig::new(input_dim, classes).hidden(hidden),
        &mut init_rng,
    ));
    (train, val, net)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str, faults: &[&str], seed: u64) -> Scenario {
        Scenario::new(name, faults.iter().map(|f| f.parse().unwrap()).collect())
            .seed(seed)
            .budgets(2, 2, 1, 1)
            .task(TaskKind::Moons {
                samples: 80,
                noise: 0.1,
            })
    }

    #[test]
    fn scenario_runs_and_tags_the_report() {
        let sc = tiny("ln", &["lognormal:0.4"], 3);
        let outcome = CampaignRunner::new().run_scenario(&sc).unwrap();
        assert_eq!(outcome.report.trials.len(), 2);
        let meta = outcome.report.scenario.as_ref().unwrap();
        assert_eq!(meta.name, "ln");
        assert_eq!(meta.digest, outcome.digest);
        assert_eq!(meta.position, None, "standalone runs carry no position");
        assert!(!outcome.from_cache);
        assert!(!outcome.from_store);
        assert!(outcome.wall_ms > 0.0);
        assert_eq!(outcome.compute_wall_ms, outcome.wall_ms);
    }

    #[test]
    fn repeated_runs_are_memoized_and_identical() {
        let sc = tiny("memo", &["lognormal:0.4", "stuckat:0.05"], 5);
        let runner = CampaignRunner::new();
        let first = runner.run_scenario(&sc).unwrap();
        let second = runner.run_scenario(&sc).unwrap();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(runner.cached_runs(), 1);
        assert!(first.report.deterministic_eq(&second.report));
    }

    #[test]
    fn cache_hits_preserve_the_original_compute_time() {
        let sc = tiny("walltime", &["lognormal:0.4"], 8);
        let runner = CampaignRunner::new();
        let first = runner.run_scenario(&sc).unwrap();
        let second = runner.run_scenario(&sc).unwrap();
        assert_eq!(second.wall_ms, 0.0, "serving a hit costs nothing");
        assert_eq!(
            second.compute_wall_ms, first.wall_ms,
            "the producing run's wall-clock must survive the cache hit"
        );
        assert!(second.compute_wall_ms > 0.0);
    }

    #[test]
    fn cache_hits_are_keyed_on_content_not_name() {
        let runner = CampaignRunner::new();
        let a = runner
            .run_scenario(&tiny("original", &["lognormal:0.4"], 5))
            .unwrap();
        let b = runner
            .run_scenario(&tiny("renamed", &["lognormal:0.4"], 5))
            .unwrap();
        assert!(b.from_cache, "same content must hit the cache");
        assert_eq!(b.report.scenario.as_ref().unwrap().name, "renamed");
        assert_eq!(a.report.best_alpha, b.report.best_alpha);
        // Different seed misses.
        let c = runner
            .run_scenario(&tiny("original", &["lognormal:0.4"], 6))
            .unwrap();
        assert!(!c.from_cache);
    }

    #[test]
    fn a_failing_scenario_does_not_abort_the_campaign() {
        let good = tiny("good", &["lognormal:0.3"], 1);
        let mut bad = tiny("bad", &["lognormal:0.3"], 1);
        bad.faults = vec![reram::FaultSpec::LogNormal { sigma: -2.0 }];
        let campaign = Campaign::new("mixed", vec![bad, good]);
        let runs = CampaignRunner::new().run_campaign(&campaign);
        assert_eq!(runs.len(), 2);
        assert!(runs[0].result.is_err(), "bad scenario must fail");
        assert!(runs[1].result.is_ok(), "good scenario must still run");
    }

    #[test]
    fn quick_mode_clamps_budgets() {
        let sc = tiny("q", &["lognormal:0.3"], 2).budgets(10, 8, 4, 4);
        let outcome = CampaignRunner::new().quick(true).run_scenario(&sc).unwrap();
        assert_eq!(outcome.scenario.trials, 3);
        assert_eq!(outcome.report.trials.len(), 3);
        assert_ne!(outcome.digest, sc.digest());
    }

    #[test]
    fn campaign_report_counts_progress_and_positions() {
        let campaign = Campaign::new(
            "prog",
            vec![
                tiny("a", &["lognormal:0.4"], 1),
                tiny("a-alias", &["lognormal:0.4"], 1),
                tiny("b", &["lognormal:0.2"], 2),
            ],
        );
        let runner = CampaignRunner::new();
        let report = runner.run_campaign_report(&campaign, None).unwrap();
        assert_eq!((report.total, report.completed, report.failed), (3, 3, 0));
        assert_eq!(report.cache_served, 1, "the alias is memo-served");
        assert_eq!(report.store_served, 0);
        assert_eq!(report.shards, 1);
        assert_eq!(report.shard_wall_ms.len(), 1);
        assert!(report.wall_ms > 0.0);
        for (i, run) in report.runs.iter().enumerate() {
            let outcome = run.result.as_ref().unwrap();
            assert_eq!(
                outcome.report.scenario.as_ref().unwrap().position,
                Some((i, 3)),
                "campaign position is threaded into the report"
            );
        }
    }

    #[test]
    fn zero_shards_means_one_per_core_capped_by_campaign() {
        assert_eq!(effective_shards(1, 10), 1);
        assert_eq!(effective_shards(5, 3), 3, "never more shards than work");
        assert_eq!(effective_shards(5, 0), 1);
        assert!(effective_shards(0, 64) >= 1);
    }
}
