//! `campaign` — run, inspect, audit, and compact declarative fault
//! campaigns.
//!
//! ```text
//! campaign run <campaign.json> [--store <path>] [--shards <n>]
//!              [--resume <path>] [--parallelism <n>]
//! campaign list [--store <path>]
//! campaign compare [--store <path>]
//! campaign compact [--store <path>]
//! ```
//!
//! `run` executes every scenario of the file through the BayesFT engine —
//! across `--shards` work-stealing shards, bit-identically to the serial
//! path — and appends one JSONL record per scenario to the store, in
//! campaign order. `--resume <path>` replays scenarios already persisted
//! in that store instead of recomputing them. `BENCH_QUICK=1` clamps every
//! scenario to smoke-test budgets.
//! `list` prints the stored records; `compare` groups them by
//! `(scenario-digest, seed)` and verifies that repeated runs reproduced
//! bit-identical best-α vectors, exiting non-zero on any divergence;
//! `compact` atomically rewrites the store into its canonical
//! deduplicated form (byte-identical across shard counts and resumes).

use std::process::ExitCode;

use scenarios::{Campaign, CampaignRunner, ResultStore};

const DEFAULT_STORE: &str = "campaign_results.jsonl";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "list" => cmd_list(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("campaign: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  campaign run <campaign.json> [--store <path>] [--shards <n>]
               [--resume <path>] [--parallelism <n>]
  campaign list [--store <path>]
  campaign compare [--store <path>]
  campaign compact [--store <path>]

--shards n     run scenarios over n work-stealing shards (0 = one per
               core); results are bit-identical to the serial path
--resume path  serve scenarios already persisted in this store instead of
               recomputing them (implies --store path)
BENCH_QUICK=1  clamps run budgets to smoke-test scale";

/// `(--flag, value)` pairs plus the remaining positional arguments.
type ParsedArgs = (Vec<(String, String)>, Vec<String>);

/// Pulls `--flag value` out of an argument list, returning the remaining
/// positional arguments.
fn parse_flags(args: &[String], flags: &[&str]) -> Result<ParsedArgs, String> {
    let mut values = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            if !flags.contains(&name) {
                return Err(format!("unknown flag '--{name}'"));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("'--{name}' needs a value"))?;
            values.push((name.to_string(), value.clone()));
            i += 2;
        } else {
            positional.push(arg.clone());
            i += 1;
        }
    }
    Ok((values, positional))
}

fn flag<'a>(values: &'a [(String, String)], name: &str) -> Option<&'a str> {
    values
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn count_flag(values: &[(String, String)], name: &str) -> Result<Option<usize>, String> {
    match flag(values, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("'--{name} {v}' is not a number")),
    }
}

fn quick_from_env() -> bool {
    std::env::var("BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["store", "parallelism", "shards", "resume"])?;
    let [path] = positional.as_slice() else {
        return Err(format!("'run' takes exactly one campaign file\n{USAGE}"));
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let campaign = Campaign::from_json_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let parallelism = count_flag(&flags, "parallelism")?.unwrap_or(1);
    let shards = count_flag(&flags, "shards")?.unwrap_or(1);
    let resume_path = flag(&flags, "resume").map(str::to_string);
    let store_path = flag(&flags, "store")
        .map(str::to_string)
        .or_else(|| resume_path.clone())
        .or_else(|| campaign.store.clone())
        .unwrap_or_else(|| DEFAULT_STORE.to_string());
    if let Some(resume) = &resume_path {
        if *resume != store_path {
            return Err(format!(
                "'--resume {resume}' conflicts with '--store {store_path}': \
                 a resumed campaign continues the store it resumes from"
            ));
        }
    }
    let store = ResultStore::open(&store_path);
    let quick = quick_from_env();

    println!(
        "campaign '{}': {} scenario(s), {} shard(s){}{} -> {}",
        campaign.name,
        campaign.scenarios.len(),
        if shards == 0 {
            "per-core".to_string()
        } else {
            shards.to_string()
        },
        if quick { " [quick budgets]" } else { "" },
        if resume_path.is_some() {
            " [resuming]"
        } else {
            ""
        },
        store_path,
    );
    let mut runner = CampaignRunner::new()
        .parallelism(parallelism)
        .shards(shards)
        .quick(quick);
    if resume_path.is_some() {
        runner = runner.resume_from(&store).map_err(|e| e.to_string())?;
        println!(
            "resume: {} replayable record(s) in {store_path}",
            runner.resumable_runs()
        );
    }
    let report = runner
        .run_campaign_report(&campaign, Some(&store))
        .map_err(|e| e.to_string())?;
    for warning in &report.warnings {
        eprintln!("warning: {warning}");
    }
    println!(
        "{:<18} {:<16} {:>9} {:>9} {:>24}",
        "scenario", "digest", "best obj", "wall ms", "faults"
    );
    for run in &report.runs {
        match &run.result {
            Err(e) => eprintln!("  {:<18} FAILED: {e}", run.name),
            Ok(outcome) => {
                let faults: Vec<String> = outcome
                    .scenario
                    .faults
                    .iter()
                    .map(ToString::to_string)
                    .collect();
                let served = if outcome.from_store {
                    "+" // replayed from the resume store
                } else if outcome.from_cache {
                    "*" // served by the in-process memo cache
                } else {
                    " "
                };
                println!(
                    "{:<18} {:<16} {:>9.4} {:>9.0}{} {:>24}",
                    outcome.scenario.name,
                    outcome.digest,
                    outcome.report.best_objective,
                    outcome.compute_wall_ms,
                    served,
                    faults.join(" "),
                );
                println!("{:<18} best alpha = {:?}", "", outcome.report.best_alpha);
            }
        }
    }
    let shard_walls: Vec<String> = report
        .shard_wall_ms
        .iter()
        .enumerate()
        .map(|(i, ms)| format!("shard{i} {ms:.0}ms"))
        .collect();
    println!(
        "progress: {}/{} completed ({} cache-served, {} store-served, {} failed) in {:.0} ms [{}]",
        report.completed,
        report.total,
        report.cache_served,
        report.store_served,
        report.failed,
        report.wall_ms,
        shard_walls.join(", "),
    );
    if report.failed > 0 {
        eprintln!("{} scenario(s) failed", report.failed);
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["store"])?;
    if !positional.is_empty() {
        return Err(format!("'list' takes no positional arguments\n{USAGE}"));
    }
    let store_path = flag(&flags, "store").unwrap_or(DEFAULT_STORE);
    let (records, warnings) = ResultStore::open(store_path)
        .load_lenient()
        .map_err(|e| e.to_string())?;
    for warning in &warnings {
        eprintln!("warning: {warning}");
    }
    if records.is_empty() {
        println!("no results in {store_path}");
        return Ok(ExitCode::SUCCESS);
    }
    println!(
        "{:<14} {:<18} {:<16} {:>20} {:>9}  faults",
        "campaign", "scenario", "digest", "seed", "best obj"
    );
    for r in &records {
        println!(
            "{:<14} {:<18} {:<16} {:>20} {:>9.4}  {}",
            r.campaign,
            r.scenario,
            r.digest,
            r.seed,
            r.best_objective,
            r.faults.join(" "),
        );
    }
    println!("{} record(s) in {store_path}", records.len());
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["store"])?;
    if !positional.is_empty() {
        return Err(format!("'compare' takes no positional arguments\n{USAGE}"));
    }
    let store_path = flag(&flags, "store").unwrap_or(DEFAULT_STORE);
    let groups = ResultStore::open(store_path)
        .compare()
        .map_err(|e| e.to_string())?;
    if groups.is_empty() {
        println!("no results in {store_path}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut diverged = 0usize;
    let mut repeated = 0usize;
    println!(
        "{:<18} {:<16} {:>20} {:>5} {:>11}  {:<10} best alpha",
        "scenario", "digest", "seed", "runs", "compute ms", "verdict"
    );
    for g in &groups {
        let verdict = if g.runs < 2 {
            "single"
        } else if g.identical {
            repeated += 1;
            "IDENTICAL"
        } else {
            diverged += 1;
            "DIVERGED"
        };
        println!(
            "{:<18} {:<16} {:>20} {:>5} {:>11.0}  {:<10} {:?}",
            g.scenario, g.digest, g.seed, g.runs, g.compute_wall_ms, verdict, g.best_alpha,
        );
    }
    if diverged > 0 {
        eprintln!("{diverged} group(s) failed to reproduce bit-identical best alpha");
        return Ok(ExitCode::FAILURE);
    }
    if repeated == 0 {
        println!("note: no (digest, seed) pair has multiple runs yet; run the campaign again to audit reproducibility");
    } else {
        println!("{repeated} repeated group(s), all bit-identical");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compact(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["store"])?;
    if !positional.is_empty() {
        return Err(format!("'compact' takes no positional arguments\n{USAGE}"));
    }
    let store_path = flag(&flags, "store").unwrap_or(DEFAULT_STORE);
    let summary = ResultStore::open(store_path)
        .compact()
        .map_err(|e| e.to_string())?;
    println!(
        "compacted {store_path}: {} record(s) kept, {} duplicate(s) folded{}",
        summary.kept,
        summary.dropped_duplicates,
        if summary.dropped_truncated {
            ", 1 truncated trailing line dropped"
        } else {
            ""
        },
    );
    Ok(ExitCode::SUCCESS)
}
