//! Crash-safe, append-only JSONL persistence for campaign results.
//!
//! The store is the campaign subsystem's source of truth for resume:
//! appends are line-atomic (one `write` + fsync per record), [`ResultStore::load`]
//! tolerates the one artifact a crash can leave behind (a truncated
//! trailing line) by skipping it with a surfaced warning, and
//! [`ResultStore::compact`] rewrites the file atomically (write-then-rename)
//! into its canonical deduplicated form.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde_json::Value;

use crate::{CampaignError, ScenarioOutcome};

/// Poll interval while waiting on a contended store lock.
const LOCK_RETRY: Duration = Duration::from_millis(10);
/// How long the internal writers ([`ResultStore::append`],
/// [`ResultStore::compact`]) wait for the advisory lock before giving up.
const LOCK_WAIT: Duration = Duration::from_secs(5);

/// Top-level record fields that are measurements of a particular run, not
/// deterministic results; [`ResultStore::compact`] strips them so serial,
/// sharded, and resumed stores of the same campaign compact to identical
/// bytes.
const VOLATILE_RECORD_KEYS: [&str; 4] = ["from_cache", "from_store", "wall_ms", "compute_wall_ms"];

/// Same, for the nested `report` object (wall-clock timings, worker counts,
/// and campaign-position provenance).
const VOLATILE_REPORT_KEYS: [&str; 4] =
    ["timings", "parallelism", "scenario_index", "scenario_total"];

/// An append-only JSONL store of scenario results: one JSON object per
/// line, human-greppable, crash-safe, and resumable.
///
/// # Example
///
/// ```no_run
/// use scenarios::ResultStore;
///
/// let store = ResultStore::open("campaign_results.jsonl");
/// for record in store.load().unwrap() {
///     println!("{} (seed {}): {:?}", record.scenario, record.seed, record.best_alpha);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ResultStore {
    path: PathBuf,
}

/// One persisted scenario result, as read back by [`ResultStore::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    /// Campaign name the run belonged to.
    pub campaign: String,
    /// Scenario name.
    pub scenario: String,
    /// Scenario content digest ([`Scenario::digest`](crate::Scenario::digest)).
    pub digest: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Fault specs, in the shared string grammar.
    pub faults: Vec<String>,
    /// Best architecture coordinates the search found.
    pub best_alpha: Vec<f64>,
    /// Objective value of the best trial.
    pub best_objective: f64,
    /// Whether the producing campaign served this outcome from its memo
    /// cache (`false` for compacted stores, which strip measurements).
    pub from_cache: bool,
    /// Whether the outcome was replayed from a prior store by `--resume`.
    pub from_store: bool,
    /// Wall-clock this campaign spent producing the record, in ms (0 for
    /// cache/store hits and compacted stores).
    pub wall_ms: f64,
    /// Wall-clock of the engine run that *originally* computed the result,
    /// preserved across cache and resume hits (0 for compacted stores).
    pub compute_wall_ms: f64,
    /// The full stored line, for fields not lifted into this struct.
    pub raw: Value,
}

/// What [`ResultStore::compact`] did to the file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompactionSummary {
    /// Records surviving in the compacted store.
    pub kept: usize,
    /// Older duplicates (same `(digest, seed)`) folded into their latest
    /// record.
    pub dropped_duplicates: usize,
    /// Whether a truncated trailing line (crash artifact) was dropped.
    pub dropped_truncated: bool,
}

/// What [`ResultStore::merge_from`] did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergeSummary {
    /// How many input stores were merged.
    pub inputs: usize,
    /// Total records read across all inputs (pre-dedup).
    pub records: usize,
    /// Records surviving in the merged, compacted store.
    pub kept: usize,
    /// Duplicates (same `(digest, seed)`) folded during compaction.
    pub dropped_duplicates: usize,
    /// Reproducibility conflicts: `(digest, seed)` groups whose payloads
    /// disagreed across inputs. The merge keeps the latest record but
    /// never silently — each conflict is described here.
    pub conflicts: Vec<String>,
    /// Warnings from tolerant input loading (truncated crash tails).
    pub warnings: Vec<String>,
}

/// Result of comparing all stored runs that share a `(digest, seed)` key.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareGroup {
    /// Scenario name of the first run in the group.
    pub scenario: String,
    /// Scenario content digest.
    pub digest: String,
    /// Master seed.
    pub seed: u64,
    /// How many stored runs share the key.
    pub runs: usize,
    /// Whether every run reproduced bit-identical `best_alpha` and
    /// `best_objective` values.
    pub identical: bool,
    /// The first run's best α (the reference the others were checked
    /// against).
    pub best_alpha: Vec<f64>,
    /// The first run's best objective value.
    pub best_objective: f64,
    /// Real compute cost of the group in ms: the **sum** of
    /// `compute_wall_ms` over the group's *fresh* records (neither
    /// cache- nor store-served) — every fresh record paid for its own
    /// engine run, so summing counts each run exactly once across
    /// re-runs, resumes, and shard merges, while cache/store hits (which
    /// merely *preserve* the original run's timing) are excluded to avoid
    /// double-counting. When the group has no fresh records (every record
    /// is a replay, or compaction stripped provenance), falls back to the
    /// **max** preserved `compute_wall_ms` — the cost of the one engine
    /// run all those replays point back to. 0 when the store only holds
    /// compacted records.
    pub compute_wall_ms: f64,
}

/// An advisory, flock-style lock on a [`ResultStore`], held as long as the
/// guard lives.
///
/// The lock is an OS advisory lock on a sibling file (`<store>.lock`), so
/// two processes cannot both own it; dropping the guard — or the owning
/// process dying, however abruptly — releases it, so a crashed writer can
/// never leave the store wedged. [`ResultStore::append`] and
/// [`ResultStore::compact`] take it internally around their critical
/// sections, which is what keeps two concurrent writer processes from
/// interleaving a compaction rename with appends. The lock file itself
/// persists on disk (removing it would race a waiter locking the old
/// inode) and records the current holder's PID for diagnostics.
#[derive(Debug)]
pub struct StoreLock {
    /// Keeps the OS lock alive; closing the file releases it.
    file: File,
    path: PathBuf,
}

impl StoreLock {
    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = self.file.unlock();
    }
}

impl ResultStore {
    /// Points the store at `path`; no I/O happens until the first
    /// [`ResultStore::append`] or [`ResultStore::load`].
    pub fn open(path: impl Into<PathBuf>) -> Self {
        ResultStore { path: path.into() }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The advisory lock file's path: `<store>.lock` beside the store.
    pub fn lock_path(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(".lock");
        PathBuf::from(os)
    }

    /// Attempts to take the advisory writer lock without waiting. Returns
    /// `Ok(None)` when another holder owns it.
    ///
    /// The lock is a kernel advisory lock on the lock file, not the file's
    /// existence: a leftover `<store>.lock` from a dead process is simply
    /// re-locked, so crashes cannot wedge the store.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on filesystem failures.
    pub fn try_lock(&self) -> Result<Option<StoreLock>, CampaignError> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let path = self.lock_path();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {
                // Record the holder so a contended lock is diagnosable; the
                // tag is best-effort (the kernel lock, not the content, is
                // the mutual-exclusion mechanism — no fsync needed).
                let _ = file.set_len(0);
                let _ = write!(file, "{}", std::process::id());
                Ok(Some(StoreLock { file, path }))
            }
            Err(std::fs::TryLockError::WouldBlock) => Ok(None),
            Err(std::fs::TryLockError::Error(e)) => Err(e.into()),
        }
    }

    /// Takes the advisory writer lock, waiting up to `max_wait` for a
    /// current holder to release it.
    ///
    /// While the returned guard lives, every other writer — including this
    /// store's own [`ResultStore::append`]/[`ResultStore::compact`] calls
    /// from other handles or processes — blocks and then fails, so hold it
    /// only around externally-coordinated critical sections.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Locked`] when the lock is still held after
    /// `max_wait` (only a live process can hold it — the kernel releases a
    /// dead holder's lock), and [`CampaignError::Io`] on filesystem
    /// failures.
    pub fn lock_waiting(&self, max_wait: Duration) -> Result<StoreLock, CampaignError> {
        let _t = telemetry::Timer::start(telemetry::duration_histogram!("store_lock_wait_seconds"));
        let deadline = Instant::now() + max_wait;
        loop {
            if let Some(guard) = self.try_lock()? {
                return Ok(guard);
            }
            if Instant::now() >= deadline {
                let holder = fs::read_to_string(self.lock_path()).unwrap_or_default();
                return Err(CampaignError::Locked(format!(
                    "{}: lock held{} after waiting {:.1}s",
                    self.lock_path().display(),
                    if holder.trim().is_empty() {
                        String::new()
                    } else {
                        format!(" by pid {}", holder.trim())
                    },
                    max_wait.as_secs_f64(),
                )));
            }
            std::thread::sleep(LOCK_RETRY);
        }
    }

    /// [`ResultStore::lock_waiting`] with the writers' default patience.
    ///
    /// # Errors
    ///
    /// See [`ResultStore::lock_waiting`].
    pub fn lock(&self) -> Result<StoreLock, CampaignError> {
        self.lock_waiting(LOCK_WAIT)
    }

    /// Appends one scenario outcome as a JSONL line, creating the file
    /// (and parent directories) on first use.
    ///
    /// The full line (record + newline) goes down in a single `write`
    /// followed by an fsync, so a crash can lose or truncate at most the
    /// line being written — the exact artifact [`ResultStore::load`]
    /// tolerates. The advisory store lock is held for the duration of the
    /// write, so an append from one process can never interleave with
    /// another process's compaction rename.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on filesystem failures and
    /// [`CampaignError::Locked`] if another writer holds the store lock
    /// past the bounded wait.
    pub fn append(&self, campaign: &str, outcome: &ScenarioOutcome) -> Result<(), CampaignError> {
        let _t = telemetry::Timer::start(telemetry::duration_histogram!("store_append_seconds"));
        telemetry::static_counter!("store_appends_total").inc();
        let _lock = self.lock()?;
        let mut line = Value::object();
        line.insert("campaign", campaign);
        line.insert("scenario", outcome.scenario.name.as_str());
        line.insert("digest", outcome.digest.as_str());
        line.insert("seed", outcome.scenario.seed);
        line.insert(
            "faults",
            Value::Array(
                outcome
                    .scenario
                    .faults
                    .iter()
                    .map(|f| Value::String(f.to_string()))
                    .collect(),
            ),
        );
        line.insert("from_cache", outcome.from_cache);
        line.insert("from_store", outcome.from_store);
        line.insert("wall_ms", outcome.wall_ms);
        line.insert("compute_wall_ms", outcome.compute_wall_ms);
        line.insert("report", outcome.report.to_json());
        let mut text = serde_json::to_string(&line);
        text.push('\n');
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(text.as_bytes())?;
        {
            let _t = telemetry::Timer::start(telemetry::duration_histogram!("store_fsync_seconds"));
            file.sync_data()?;
        }
        Ok(())
    }

    /// Appends already-serialized records — e.g. a per-job worker store
    /// being folded into the daemon's — as one batch: one lock
    /// acquisition, one `write`, one fsync, so a crash mid-batch leaves
    /// at most one truncated trailing line exactly like
    /// [`ResultStore::append`] does.
    ///
    /// An empty batch is a no-op (the file is not even created).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on filesystem failures and
    /// [`CampaignError::Locked`] if another writer holds the store lock
    /// past the bounded wait.
    pub fn append_records(&self, records: &[Value]) -> Result<(), CampaignError> {
        if records.is_empty() {
            return Ok(());
        }
        telemetry::static_counter!("store_appends_total").add(records.len() as u64);
        let _lock = self.lock()?;
        let mut text = String::new();
        for record in records {
            text.push_str(&serde_json::to_string(record));
            text.push('\n');
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(text.as_bytes())?;
        {
            let _t = telemetry::Timer::start(telemetry::duration_histogram!("store_fsync_seconds"));
            file.sync_data()?;
        }
        Ok(())
    }

    /// Reads every stored record, in append order, tolerating a truncated
    /// trailing line. A missing file is an empty store, not an error.
    ///
    /// This is [`ResultStore::load_lenient`] with the warnings dropped;
    /// callers that surface diagnostics (the CLI, campaign resume) should
    /// prefer the lenient variant.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on filesystem failures and
    /// [`CampaignError::Parse`] (with the line number) on a corrupt
    /// non-trailing line.
    pub fn load(&self) -> Result<Vec<StoredRecord>, CampaignError> {
        Ok(self.load_lenient()?.0)
    }

    /// Reads every stored record plus the warnings tolerant loading
    /// produced.
    ///
    /// A line that fails to parse is fatal **unless** it is an
    /// *unterminated* final line — no trailing newline, the one artifact
    /// the single-write + fsync append discipline can leave when a process
    /// is killed mid-append. Refusing to read the other N−1 results would
    /// make every crash unrecoverable, so that line is skipped with a
    /// warning (never silently). A newline-**terminated** malformed line
    /// is *not* a crash artifact (the newline goes down in the same write
    /// as the record) and stays fatal wherever it sits, so corruption is
    /// caught before further appends could bury it mid-file.
    ///
    /// Lines are split at the byte level before UTF-8 conversion: a crash
    /// can cut the file in the middle of a multi-byte character, which
    /// must degrade into the tolerated truncated-tail case rather than a
    /// whole-file decode error.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on filesystem failures and
    /// [`CampaignError::Parse`] (with the line number) on any corrupt
    /// line other than an unterminated trailing one.
    pub fn load_lenient(&self) -> Result<(Vec<StoredRecord>, Vec<String>), CampaignError> {
        let bytes = match fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Vec::new(), Vec::new()))
            }
            Err(e) => return Err(e.into()),
        };
        let unterminated_tail = !bytes.is_empty() && !bytes.ends_with(b"\n");
        let segments: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        let last = segments.len() - 1;
        let mut records = Vec::with_capacity(segments.len());
        let mut warnings = Vec::new();
        for (i, segment) in segments.iter().enumerate() {
            if segment.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            let parsed = std::str::from_utf8(segment)
                .map_err(|e| format!("invalid UTF-8: {e}"))
                .and_then(|line| serde_json::from_str(line).map_err(|e| format!("{e}")))
                .and_then(|value| StoredRecord::from_json(value).map_err(|e| e.to_string()));
            match parsed {
                Ok(record) => records.push(record),
                Err(e) if i == last && unterminated_tail => {
                    warnings.push(format!(
                        "{}:{}: skipped truncated trailing line ({e}); the interrupted \
                         scenario will be re-run on resume",
                        self.path.display(),
                        i + 1,
                    ));
                }
                Err(e) => {
                    return Err(CampaignError::Parse(format!(
                        "{}:{}: {e}",
                        self.path.display(),
                        i + 1
                    )));
                }
            }
        }
        Ok((records, warnings))
    }

    /// Truncates a partial trailing line — the artifact a crash
    /// mid-append leaves behind (bytes after the last newline) — so
    /// subsequent appends start on a fresh line instead of concatenating
    /// onto garbage. Returns a description of the dropped fragment, or
    /// `None` if the store was already clean (or absent). Holds the
    /// advisory store lock across the read-and-truncate, so the offset is
    /// never applied to a file another process rewrote in between.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on filesystem failures and
    /// [`CampaignError::Locked`] if another writer holds the store lock
    /// past the bounded wait.
    pub fn drop_partial_tail(&self) -> Result<Option<String>, CampaignError> {
        let _lock = self.lock()?;
        let bytes = match fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if bytes.is_empty() || bytes.ends_with(b"\n") {
            return Ok(None);
        }
        let keep = bytes
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |pos| pos + 1);
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(keep as u64)?;
        file.sync_all()?;
        Ok(Some(format!(
            "{}: dropped a {}-byte partial trailing line (crash artifact); the \
             interrupted scenario will be re-run",
            self.path.display(),
            bytes.len() - keep,
        )))
    }

    /// Rewrites the store into its canonical compact form: records are
    /// deduplicated by `(digest, seed)` — the latest record wins, holding
    /// its first-appearance (campaign-order) position — measurement-only
    /// fields (wall-clocks, cache provenance, report timings) are
    /// stripped, and any truncated trailing line is dropped.
    ///
    /// Two stores of the same campaign compact to **byte-identical**
    /// files regardless of shard count, resume history, or how often the
    /// campaign was re-run — the form the reproducibility acceptance check
    /// diffs.
    ///
    /// The rewrite is atomic: a temporary file in the same directory is
    /// fully written and fsynced, then renamed over the original. A crash
    /// mid-compaction leaves the original store untouched. The advisory
    /// store lock is held from the read to the rename, so a concurrent
    /// writer process can neither append between them (the append would be
    /// silently dropped by the rename) nor race a second compaction.
    ///
    /// # Errors
    ///
    /// Propagates [`ResultStore::load_lenient`] errors, and returns
    /// [`CampaignError::Io`] on filesystem failures and
    /// [`CampaignError::Locked`] if another writer holds the store lock
    /// past the bounded wait.
    pub fn compact(&self) -> Result<CompactionSummary, CampaignError> {
        let _lock = self.lock()?;
        if !self.path.exists() {
            return Ok(CompactionSummary::default());
        }
        let (records, warnings) = self.load_lenient()?;
        let mut kept: Vec<Value> = Vec::with_capacity(records.len());
        // Key → position in `kept`: resumed stores accumulate one record
        // per scenario per run, so dedup must stay O(n).
        let mut index: HashMap<(String, u64), usize> = HashMap::with_capacity(records.len());
        let mut dropped_duplicates = 0usize;
        for record in records {
            let canonical = canonicalize(record.raw);
            match index.entry((record.digest, record.seed)) {
                Entry::Occupied(slot) => {
                    // Latest content wins, campaign-order position stays.
                    kept[*slot.get()] = canonical;
                    dropped_duplicates += 1;
                }
                Entry::Vacant(slot) => {
                    slot.insert(kept.len());
                    kept.push(canonical);
                }
            }
        }
        let mut text = String::new();
        for value in &kept {
            text.push_str(&serde_json::to_string(value));
            text.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.compact-tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        Ok(CompactionSummary {
            kept: kept.len(),
            dropped_duplicates,
            dropped_truncated: !warnings.is_empty(),
        })
    }

    /// Replaces this store with the union of `inputs` — the cross-process
    /// half of campaign sharding. Each `campaign run --shard-index i
    /// --shard-count n` process persists its owned scenarios *with their
    /// full-campaign positions*; merging stable-sorts the concatenated
    /// records by that persisted `report.scenario_index`, which
    /// reconstructs the exact append order of a serial run, then compacts.
    /// The merged, compacted store is therefore **byte-identical** to a
    /// serial `campaign run` store of the same campaign.
    ///
    /// Conflicting records — same `(digest, seed)` but diverging
    /// `best_alpha`/`best_objective` payloads — are never dropped
    /// silently: the merge runs the [`ResultStore::compare`]
    /// reproducibility audit on the pre-compaction union and reports each
    /// disagreeing group in [`MergeSummary::conflicts`] (compaction then
    /// keeps the latest record, as always).
    ///
    /// Records without a persisted position (already-compacted inputs)
    /// sort after positioned ones, preserving input order among
    /// themselves.
    ///
    /// The merged pre-compaction file is written atomically
    /// (write-then-rename) under the store lock; any previous content of
    /// this store is replaced.
    ///
    /// # Errors
    ///
    /// Propagates [`ResultStore::load_lenient`] errors from the inputs,
    /// and returns [`CampaignError::Io`] on filesystem failures and
    /// [`CampaignError::Locked`] if another writer holds this store's lock
    /// past the bounded wait.
    pub fn merge_from(&self, inputs: &[ResultStore]) -> Result<MergeSummary, CampaignError> {
        let mut records: Vec<StoredRecord> = Vec::new();
        let mut warnings = Vec::new();
        for input in inputs {
            let (mut recs, mut warns) = input.load_lenient()?;
            records.append(&mut recs);
            warnings.append(&mut warns);
        }
        let total = records.len();
        // Stable sort: ties (re-runs of the same position) keep input
        // order, so "latest wins" during compaction means the last input
        // store listed.
        records.sort_by_key(|r| persisted_position(&r.raw).unwrap_or(u64::MAX));
        {
            let _lock = self.lock()?;
            if let Some(parent) = self.path.parent() {
                if !parent.as_os_str().is_empty() {
                    fs::create_dir_all(parent)?;
                }
            }
            let mut text = String::new();
            for record in &records {
                text.push_str(&serde_json::to_string(&record.raw));
                text.push('\n');
            }
            let tmp = self.path.with_extension("jsonl.merge-tmp");
            {
                let mut file = File::create(&tmp)?;
                file.write_all(text.as_bytes())?;
                file.sync_all()?;
            }
            fs::rename(&tmp, &self.path)?;
            // Guard drops here: `compare`/`compact` below take their own
            // locks, and two descriptors in one process *do* conflict.
        }
        let conflicts: Vec<String> = self
            .compare()?
            .into_iter()
            .filter(|g| g.runs > 1 && !g.identical)
            .map(|g| {
                format!(
                    "{} (digest {}, seed {}): {} stored runs disagree on \
                     best_alpha/best_objective; inputs are not reproductions of \
                     each other (latest record kept)",
                    g.scenario, g.digest, g.seed, g.runs,
                )
            })
            .collect();
        let compaction = self.compact()?;
        Ok(MergeSummary {
            inputs: inputs.len(),
            records: total,
            kept: compaction.kept,
            dropped_duplicates: compaction.dropped_duplicates,
            conflicts,
            warnings,
        })
    }

    /// Groups every stored run by `(digest, seed)` and checks that runs
    /// sharing a key reproduced bit-identical best-α vectors — the
    /// reproducibility audit behind `campaign compare`.
    ///
    /// Groups are returned in first-appearance order.
    ///
    /// # Errors
    ///
    /// Propagates [`ResultStore::load`] errors.
    pub fn compare(&self) -> Result<Vec<CompareGroup>, CampaignError> {
        let records = self.load()?;
        let mut groups: Vec<CompareGroup> = Vec::new();
        // Per-group cost accumulators (sum over fresh records, max over
        // all records), folded into `compute_wall_ms` at the end — see
        // the field's docs for the aggregation semantics.
        let mut costs: Vec<(f64, f64)> = Vec::new();
        for record in &records {
            let fresh = !record.from_cache && !record.from_store;
            let fresh_ms = if fresh { record.compute_wall_ms } else { 0.0 };
            match groups
                .iter()
                .position(|g| g.digest == record.digest && g.seed == record.seed)
            {
                None => {
                    groups.push(CompareGroup {
                        scenario: record.scenario.clone(),
                        digest: record.digest.clone(),
                        seed: record.seed,
                        runs: 1,
                        identical: true,
                        best_alpha: record.best_alpha.clone(),
                        best_objective: record.best_objective,
                        compute_wall_ms: 0.0,
                    });
                    costs.push((fresh_ms, record.compute_wall_ms));
                }
                Some(i) => {
                    let group = &mut groups[i];
                    group.runs += 1;
                    costs[i].0 += fresh_ms;
                    costs[i].1 = costs[i].1.max(record.compute_wall_ms);
                    // Bit-identical means exact f64 equality, nothing
                    // fuzzier — except that two NaN results (stored as
                    // JSON null) count as reproducing each other: the
                    // engine guarantees determinism, the store must be
                    // able to prove it.
                    let same = group.best_alpha.len() == record.best_alpha.len()
                        && group
                            .best_alpha
                            .iter()
                            .zip(&record.best_alpha)
                            .all(|(a, b)| nan_aware_eq(*a, *b))
                        && nan_aware_eq(group.best_objective, record.best_objective);
                    if !same {
                        group.identical = false;
                    }
                }
            }
        }
        for (group, (fresh_sum, max_preserved)) in groups.iter_mut().zip(costs) {
            group.compute_wall_ms = if fresh_sum > 0.0 {
                fresh_sum
            } else {
                max_preserved
            };
        }
        Ok(groups)
    }
}

/// The full-campaign position a pre-compaction record was produced at
/// (`report.scenario_index`); `None` once compaction has stripped it.
fn persisted_position(raw: &Value) -> Option<u64> {
    raw.get("report")?.get("scenario_index")?.as_u64()
}

/// Exact f64 equality, except that NaN reproduces NaN — diverged results
/// round-trip through JSON `null`, and two runs that both diverged did
/// reproduce each other.
fn nan_aware_eq(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

/// Strips the measurement-only fields from a stored record, leaving the
/// deterministic content in its original key order.
fn canonicalize(mut value: Value) -> Value {
    for key in VOLATILE_RECORD_KEYS {
        value.remove(key);
    }
    if let Some(report) = value.get_mut("report") {
        for key in VOLATILE_REPORT_KEYS {
            report.remove(key);
        }
    }
    value
}

impl StoredRecord {
    fn from_json(value: Value) -> Result<Self, CampaignError> {
        let text = |key: &str| -> Result<String, CampaignError> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| CampaignError::Parse(format!("record is missing '{key}'")))
        };
        // The vendored serializer writes non-finite f64s as JSON `null`
        // (a diverged scenario can legitimately report a NaN objective),
        // so `null` reads back as NaN here rather than poisoning the
        // whole store as a fatal parse error.
        let lenient_f64 = |v: &Value, what: &str| -> Result<f64, CampaignError> {
            match v {
                Value::Null => Ok(f64::NAN),
                _ => v
                    .as_f64()
                    .ok_or_else(|| CampaignError::Parse(format!("non-numeric {what}"))),
            }
        };
        let report = value
            .get("report")
            .ok_or_else(|| CampaignError::Parse("record is missing 'report'".into()))?;
        let best_alpha = report
            .get("best_alpha")
            .and_then(Value::as_array)
            .ok_or_else(|| CampaignError::Parse("report is missing 'best_alpha'".into()))?
            .iter()
            .map(|v| lenient_f64(v, "best_alpha entry"))
            .collect::<Result<Vec<_>, _>>()?;
        let best_objective = lenient_f64(
            report
                .get("best_objective")
                .ok_or_else(|| CampaignError::Parse("report is missing 'best_objective'".into()))?,
            "best_objective",
        )?;
        let faults = value
            .get("faults")
            .and_then(Value::as_array)
            .ok_or_else(|| CampaignError::Parse("record is missing 'faults'".into()))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| CampaignError::Parse("non-string faults entry".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Measurement fields are optional: compacted stores strip them and
        // pre-compaction stores from older versions lack some of them.
        let wall_ms = value.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0);
        let compute_wall_ms = value
            .get("compute_wall_ms")
            .and_then(Value::as_f64)
            .unwrap_or(wall_ms);
        Ok(StoredRecord {
            campaign: text("campaign")?,
            scenario: text("scenario")?,
            digest: text("digest")?,
            seed: value
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| CampaignError::Parse("record is missing 'seed'".into()))?,
            faults,
            best_alpha,
            best_objective,
            from_cache: value
                .get("from_cache")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            from_store: value
                .get("from_store")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            wall_ms,
            compute_wall_ms,
            raw: value,
        })
    }
}
