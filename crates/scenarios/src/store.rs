//! Append-only JSONL persistence for campaign results.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::{CampaignError, ScenarioOutcome};

/// An append-only JSONL store of scenario results: one JSON object per
/// line, human-greppable and safe to extend concurrently-ish (appends are
/// line-atomic for the sizes involved).
///
/// # Example
///
/// ```no_run
/// use scenarios::ResultStore;
///
/// let store = ResultStore::open("campaign_results.jsonl");
/// for record in store.load().unwrap() {
///     println!("{} (seed {}): {:?}", record.scenario, record.seed, record.best_alpha);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ResultStore {
    path: PathBuf,
}

/// One persisted scenario result, as read back by [`ResultStore::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    /// Campaign name the run belonged to.
    pub campaign: String,
    /// Scenario name.
    pub scenario: String,
    /// Scenario content digest ([`Scenario::digest`](crate::Scenario::digest)).
    pub digest: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Fault specs, in the shared string grammar.
    pub faults: Vec<String>,
    /// Best architecture coordinates the search found.
    pub best_alpha: Vec<f64>,
    /// Objective value of the best trial.
    pub best_objective: f64,
    /// The full stored line, for fields not lifted into this struct.
    pub raw: Value,
}

/// Result of comparing all stored runs that share a `(digest, seed)` key.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareGroup {
    /// Scenario name of the first run in the group.
    pub scenario: String,
    /// Scenario content digest.
    pub digest: String,
    /// Master seed.
    pub seed: u64,
    /// How many stored runs share the key.
    pub runs: usize,
    /// Whether every run reproduced bit-identical `best_alpha` and
    /// `best_objective` values.
    pub identical: bool,
    /// The first run's best α (the reference the others were checked
    /// against).
    pub best_alpha: Vec<f64>,
    /// The first run's best objective value.
    pub best_objective: f64,
}

impl ResultStore {
    /// Points the store at `path`; no I/O happens until the first
    /// [`ResultStore::append`] or [`ResultStore::load`].
    pub fn open(path: impl Into<PathBuf>) -> Self {
        ResultStore { path: path.into() }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one scenario outcome as a JSONL line, creating the file
    /// (and parent directories) on first use.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on filesystem failures.
    pub fn append(&self, campaign: &str, outcome: &ScenarioOutcome) -> Result<(), CampaignError> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut line = Value::object();
        line.insert("campaign", campaign);
        line.insert("scenario", outcome.scenario.name.as_str());
        line.insert("digest", outcome.digest.as_str());
        line.insert("seed", outcome.scenario.seed);
        line.insert(
            "faults",
            Value::Array(
                outcome
                    .scenario
                    .faults
                    .iter()
                    .map(|f| Value::String(f.to_string()))
                    .collect(),
            ),
        );
        line.insert("from_cache", outcome.from_cache);
        line.insert("wall_ms", outcome.wall_ms);
        line.insert("report", outcome.report.to_json());
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(file, "{}", serde_json::to_string(&line))?;
        Ok(())
    }

    /// Reads every stored record, in append order. A missing file is an
    /// empty store, not an error.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on filesystem failures and
    /// [`CampaignError::Parse`] (with the line number) on a corrupt line.
    pub fn load(&self) -> Result<Vec<StoredRecord>, CampaignError> {
        let text = match fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = serde_json::from_str(line).map_err(|e| {
                CampaignError::Parse(format!("{}:{}: {e}", self.path.display(), i + 1))
            })?;
            records.push(StoredRecord::from_json(value).map_err(|e| {
                CampaignError::Parse(format!("{}:{}: {e}", self.path.display(), i + 1))
            })?);
        }
        Ok(records)
    }

    /// Groups every stored run by `(digest, seed)` and checks that runs
    /// sharing a key reproduced bit-identical best-α vectors — the
    /// reproducibility audit behind `campaign compare`.
    ///
    /// Groups are returned in first-appearance order.
    ///
    /// # Errors
    ///
    /// Propagates [`ResultStore::load`] errors.
    pub fn compare(&self) -> Result<Vec<CompareGroup>, CampaignError> {
        let records = self.load()?;
        let mut groups: Vec<CompareGroup> = Vec::new();
        for record in &records {
            match groups
                .iter_mut()
                .find(|g| g.digest == record.digest && g.seed == record.seed)
            {
                None => groups.push(CompareGroup {
                    scenario: record.scenario.clone(),
                    digest: record.digest.clone(),
                    seed: record.seed,
                    runs: 1,
                    identical: true,
                    best_alpha: record.best_alpha.clone(),
                    best_objective: record.best_objective,
                }),
                Some(group) => {
                    group.runs += 1;
                    // Bit-identical means exact f64 equality, nothing
                    // fuzzier: the engine guarantees determinism, the
                    // store must be able to prove it.
                    if group.best_alpha != record.best_alpha
                        || group.best_objective != record.best_objective
                    {
                        group.identical = false;
                    }
                }
            }
        }
        Ok(groups)
    }
}

impl StoredRecord {
    fn from_json(value: Value) -> Result<Self, CampaignError> {
        let text = |key: &str| -> Result<String, CampaignError> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| CampaignError::Parse(format!("record is missing '{key}'")))
        };
        let report = value
            .get("report")
            .ok_or_else(|| CampaignError::Parse("record is missing 'report'".into()))?;
        let best_alpha = report
            .get("best_alpha")
            .and_then(Value::as_array)
            .ok_or_else(|| CampaignError::Parse("report is missing 'best_alpha'".into()))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| CampaignError::Parse("non-numeric best_alpha entry".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let best_objective = report
            .get("best_objective")
            .and_then(Value::as_f64)
            .ok_or_else(|| CampaignError::Parse("report is missing 'best_objective'".into()))?;
        let faults = value
            .get("faults")
            .and_then(Value::as_array)
            .ok_or_else(|| CampaignError::Parse("record is missing 'faults'".into()))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| CampaignError::Parse("non-string faults entry".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StoredRecord {
            campaign: text("campaign")?,
            scenario: text("scenario")?,
            digest: text("digest")?,
            seed: value
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| CampaignError::Parse("record is missing 'seed'".into()))?,
            faults,
            best_alpha,
            best_objective,
            raw: value,
        })
    }
}
