//! Declarative fault-scenario campaigns for the BayesFT engine.
//!
//! The rest of the workspace answers "how robust is architecture α under
//! fault model F?"; this crate scales that question to *suites* of fault
//! models without hand-wiring Rust per experiment:
//!
//! * [`Scenario`] — one experiment cell: a fault mix (in the
//!   [`reram::FaultSpec`] grammar, e.g. `"quantize:16+lognormal:0.3"`), a
//!   task, a search space, budgets, and a seed. Round-trips losslessly
//!   through JSON.
//! * [`Campaign`] — a named list of scenarios, loadable from a
//!   `campaign.json` file.
//! * [`CampaignRunner`] — fans scenarios through the
//!   [`Engine`](bayesft::Engine) over a work-stealing shard pool
//!   ([`CampaignRunner::shards`], bit-identical to the serial path),
//!   memoizes evaluations by `(seed, scenario-digest)`, resumes from a
//!   persisted store ([`CampaignRunner::resume_from`]), and never lets
//!   one malformed scenario abort the sweep.
//! * [`ResultStore`] — a crash-safe, append-only JSONL store: line-fsync
//!   appends, truncation-tolerant loads, atomic deduplicating
//!   [`ResultStore::compact`], and reproducibility-compare
//!   ([`ResultStore::compare`]) queries.
//! * the `campaign` CLI binary — `run` (with `--shards` / `--resume`) /
//!   `list` / `compare` / `compact` subcommands over all of the above,
//!   with `BENCH_QUICK=1` smoke budgets.
//!
//! # Example
//!
//! ```
//! use scenarios::{Campaign, CampaignRunner};
//!
//! let campaign = Campaign::from_json_str(r#"{
//!   "name": "smoke",
//!   "scenarios": [
//!     {"name": "drift",   "faults": ["lognormal:0.4"],
//!      "task": {"kind": "moons", "samples": 80}, "trials": 2,
//!      "mc_samples": 2, "epochs_per_trial": 1, "final_epochs": 1, "seed": 1},
//!     {"name": "defects", "faults": ["lognormal:0.2+stuckat:0.02"],
//!      "task": {"kind": "moons", "samples": 80}, "trials": 2,
//!      "mc_samples": 2, "epochs_per_trial": 1, "final_epochs": 1, "seed": 1}
//!   ]
//! }"#).unwrap();
//!
//! let runner = CampaignRunner::new();
//! for run in runner.run_campaign(&campaign) {
//!     let outcome = run.result.unwrap();
//!     assert_eq!(outcome.report.scenario.as_ref().unwrap().name, run.name);
//! }
//! ```

mod error;
mod runner;
mod scenario;
mod store;

pub use error::CampaignError;
pub use runner::{CampaignReport, CampaignRunner, RunControl, ScenarioOutcome, ScenarioRun};
pub use scenario::{Campaign, Scenario, SpaceKind, TaskKind};
pub use store::{
    CompactionSummary, CompareGroup, MergeSummary, ResultStore, StoreLock, StoredRecord,
};
