//! Declarative scenario and campaign specs with lossless JSON round-trips.

use serde_json::Value;

use reram::FaultSpec;

use crate::CampaignError;

/// Which synthetic task a scenario trains and evaluates on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskKind {
    /// 2-D two-moons classification (`datasets::moons`).
    Moons {
        /// Total sample count before the 80/20 split.
        samples: usize,
        /// Gaussian coordinate noise.
        noise: f32,
    },
    /// 14×14 synthetic digit bitmaps, 10 classes (`datasets::digits`).
    Digits {
        /// Samples generated per class.
        per_class: usize,
    },
    /// 16×16 RGB shape renderings, 10 classes (`datasets::shapes`).
    Shapes {
        /// Samples generated per class.
        per_class: usize,
    },
}

impl TaskKind {
    /// Short task label for tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TaskKind::Moons { .. } => "moons",
            TaskKind::Digits { .. } => "digits",
            TaskKind::Shapes { .. } => "shapes",
        }
    }

    fn to_json(self) -> Value {
        let mut obj = Value::object();
        match self {
            TaskKind::Moons { samples, noise } => {
                obj.insert("kind", "moons");
                obj.insert("samples", samples);
                obj.insert("noise", noise);
            }
            TaskKind::Digits { per_class } => {
                obj.insert("kind", "digits");
                obj.insert("per_class", per_class);
            }
            TaskKind::Shapes { per_class } => {
                obj.insert("kind", "shapes");
                obj.insert("per_class", per_class);
            }
        }
        obj
    }

    fn from_json(value: &Value) -> Result<Self, CampaignError> {
        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| CampaignError::Parse("task needs a string 'kind'".into()))?;
        match kind {
            "moons" => Ok(TaskKind::Moons {
                samples: get_usize(value, "samples")?.unwrap_or(240),
                noise: get_f32(value, "noise")?.unwrap_or(0.1),
            }),
            "digits" => Ok(TaskKind::Digits {
                per_class: get_usize(value, "per_class")?.unwrap_or(12),
            }),
            "shapes" => Ok(TaskKind::Shapes {
                per_class: get_usize(value, "per_class")?.unwrap_or(12),
            }),
            other => Err(CampaignError::Parse(format!(
                "unknown task kind '{other}' (expected moons|digits|shapes)"
            ))),
        }
    }
}

impl Default for TaskKind {
    fn default() -> Self {
        TaskKind::Moons {
            samples: 240,
            noise: 0.1,
        }
    }
}

/// Which search space the engine explores for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpaceKind {
    /// The paper's per-dropout-layer space (`DropoutSearchSpace`).
    #[default]
    PerLayer,
    /// One shared rate across all dropout layers (`SharedDropoutSpace`).
    Shared,
}

impl SpaceKind {
    /// The spec-file string for this space.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpaceKind::PerLayer => "per_layer",
            SpaceKind::Shared => "shared",
        }
    }

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        match s {
            "per_layer" => Ok(SpaceKind::PerLayer),
            "shared" => Ok(SpaceKind::Shared),
            other => Err(CampaignError::Parse(format!(
                "unknown space '{other}' (expected per_layer|shared)"
            ))),
        }
    }
}

/// One experiment cell of a campaign: a fault mix, a task, a search-space
/// choice, and the trial/Monte-Carlo budgets and seed that make the run
/// reproducible.
///
/// Serializes to/from JSON losslessly ([`Scenario::to_json`] /
/// [`Scenario::from_json`]); fault models are stored in the shared
/// [`reram::FaultSpec`] string grammar, so a scenario file and a CLI flag
/// use one parser.
///
/// # Example
///
/// ```
/// use scenarios::Scenario;
///
/// let sc = Scenario::new(
///     "stuck-at sweep",
///     vec!["lognormal:0.3".parse().unwrap(), "stuckat:0.02".parse().unwrap()],
/// );
/// let round_tripped = Scenario::from_json(&sc.to_json()).unwrap();
/// assert_eq!(round_tripped, sc);
/// assert_eq!(round_tripped.digest(), sc.digest());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (unique within a campaign by
    /// convention, not enforcement).
    pub name: String,
    /// Fault models the objective marginalizes over (at least one).
    pub faults: Vec<FaultSpec>,
    /// Task the scenario trains and evaluates on.
    pub task: TaskKind,
    /// Search space the engine explores.
    pub space: SpaceKind,
    /// Bayesian-optimization trials.
    pub trials: usize,
    /// Monte-Carlo samples per fault model per evaluation.
    pub mc_samples: usize,
    /// SGD epochs between trials.
    pub epochs_per_trial: usize,
    /// Fine-tuning epochs after the search.
    pub final_epochs: usize,
    /// Master seed; everything the scenario computes is deterministic in
    /// it.
    pub seed: u64,
}

impl Scenario {
    /// Creates a scenario with default task (moons), space (per-layer),
    /// budgets, and seed 0.
    pub fn new(name: impl Into<String>, faults: Vec<FaultSpec>) -> Self {
        Scenario {
            name: name.into(),
            faults,
            task: TaskKind::default(),
            space: SpaceKind::default(),
            trials: 6,
            mc_samples: 4,
            epochs_per_trial: 2,
            final_epochs: 4,
            seed: 0,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the task.
    pub fn task(mut self, task: TaskKind) -> Self {
        self.task = task;
        self
    }

    /// Sets the search space.
    pub fn space(mut self, space: SpaceKind) -> Self {
        self.space = space;
        self
    }

    /// Sets the trial/Monte-Carlo/epoch budgets.
    pub fn budgets(
        mut self,
        trials: usize,
        mc_samples: usize,
        epochs_per_trial: usize,
        final_epochs: usize,
    ) -> Self {
        self.trials = trials;
        self.mc_samples = mc_samples;
        self.epochs_per_trial = epochs_per_trial;
        self.final_epochs = final_epochs;
        self
    }

    /// Checks that the scenario is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Parse`] for empty fault lists, zero
    /// budgets, or degenerate task sizes.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.name.trim().is_empty() {
            return Err(CampaignError::Parse("scenario name is empty".into()));
        }
        if self.faults.is_empty() {
            return Err(CampaignError::Parse(format!(
                "scenario '{}' has no fault models",
                self.name
            )));
        }
        for fault in &self.faults {
            fault.build().map_err(CampaignError::Fault)?;
        }
        if self.trials == 0 || self.mc_samples == 0 {
            return Err(CampaignError::Parse(format!(
                "scenario '{}' needs at least one trial and one Monte-Carlo sample",
                self.name
            )));
        }
        let enough_data = match self.task {
            TaskKind::Moons { samples, .. } => samples >= 10,
            TaskKind::Digits { per_class } | TaskKind::Shapes { per_class } => per_class >= 2,
        };
        if !enough_data {
            return Err(CampaignError::Parse(format!(
                "scenario '{}' has too little data to split",
                self.name
            )));
        }
        Ok(())
    }

    /// A copy with budgets clamped to smoke-test scale (`BENCH_QUICK`).
    ///
    /// Clamping changes the scenario content, hence also its
    /// [`Scenario::digest`] — quick results never collide with full
    /// results in a store.
    pub fn clamped_quick(&self) -> Self {
        let mut sc = self.clone();
        sc.trials = sc.trials.min(3);
        sc.mc_samples = sc.mc_samples.min(2);
        sc.epochs_per_trial = sc.epochs_per_trial.min(1);
        sc.final_epochs = sc.final_epochs.min(1);
        sc.task = match sc.task {
            TaskKind::Moons { samples, noise } => TaskKind::Moons {
                samples: samples.min(160),
                noise,
            },
            TaskKind::Digits { per_class } => TaskKind::Digits {
                per_class: per_class.min(6),
            },
            TaskKind::Shapes { per_class } => TaskKind::Shapes {
                per_class: per_class.min(6),
            },
        };
        sc
    }

    /// Builds the JSON form of the scenario (stable key order).
    pub fn to_json(&self) -> Value {
        let mut obj = Value::object();
        obj.insert("name", self.name.as_str());
        obj.insert(
            "faults",
            Value::Array(
                self.faults
                    .iter()
                    .map(|f| Value::String(f.to_string()))
                    .collect(),
            ),
        );
        obj.insert("task", self.task.to_json());
        obj.insert("space", self.space.as_str());
        obj.insert("trials", self.trials);
        obj.insert("mc_samples", self.mc_samples);
        obj.insert("epochs_per_trial", self.epochs_per_trial);
        obj.insert("final_epochs", self.final_epochs);
        obj.insert("seed", self.seed);
        obj
    }

    /// Parses a scenario from its JSON form. Budgets, task, space, and
    /// seed are optional (defaults apply); `name` and `faults` are
    /// required; unknown keys are rejected so config typos fail loudly.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Parse`] on malformed structure and
    /// [`CampaignError::Fault`] on a bad fault spec.
    pub fn from_json(value: &Value) -> Result<Self, CampaignError> {
        let entries = value
            .as_object()
            .ok_or_else(|| CampaignError::Parse("scenario must be a JSON object".into()))?;
        const KNOWN: [&str; 9] = [
            "name",
            "faults",
            "task",
            "space",
            "trials",
            "mc_samples",
            "epochs_per_trial",
            "final_epochs",
            "seed",
        ];
        for (key, _) in entries {
            if !KNOWN.contains(&key.as_str()) {
                return Err(CampaignError::Parse(format!(
                    "unknown scenario field '{key}'"
                )));
            }
        }
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| CampaignError::Parse("scenario needs a string 'name'".into()))?
            .to_string();
        let fault_values = value
            .get("faults")
            .and_then(Value::as_array)
            .ok_or_else(|| CampaignError::Parse(format!("scenario '{name}' needs 'faults'")))?;
        let mut faults = Vec::with_capacity(fault_values.len());
        for fv in fault_values {
            let s = fv.as_str().ok_or_else(|| {
                CampaignError::Parse(format!("scenario '{name}': faults must be strings"))
            })?;
            faults.push(s.parse::<FaultSpec>().map_err(CampaignError::Fault)?);
        }
        let defaults = Scenario::new(name.clone(), Vec::new());
        let scenario = Scenario {
            name,
            faults,
            task: match value.get("task") {
                Some(t) => TaskKind::from_json(t)?,
                None => TaskKind::default(),
            },
            space: match value.get("space") {
                Some(s) => SpaceKind::from_str(
                    s.as_str()
                        .ok_or_else(|| CampaignError::Parse("'space' must be a string".into()))?,
                )?,
                None => SpaceKind::default(),
            },
            trials: get_usize(value, "trials")?.unwrap_or(defaults.trials),
            mc_samples: get_usize(value, "mc_samples")?.unwrap_or(defaults.mc_samples),
            epochs_per_trial: get_usize(value, "epochs_per_trial")?
                .unwrap_or(defaults.epochs_per_trial),
            final_epochs: get_usize(value, "final_epochs")?.unwrap_or(defaults.final_epochs),
            seed: get_u64(value, "seed")?.unwrap_or(0),
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Content digest (16 hex chars) of everything that determines the
    /// scenario's results: fault mix, task, space, and budgets. The name
    /// (pure labeling) and the seed (tracked separately) are excluded —
    /// `(seed, digest)` is the memoization key of
    /// [`CampaignRunner`](crate::CampaignRunner) and the grouping key of
    /// `campaign compare`.
    pub fn digest(&self) -> String {
        let mut json = self.to_json();
        if let Value::Object(entries) = &mut json {
            entries.retain(|(k, _)| k != "seed" && k != "name");
        }
        format!("{:016x}", fnv1a(serde_json::to_string(&json).as_bytes()))
    }
}

/// FNV-1a 64-bit hash; stable across platforms and runs, which is all a
/// content digest needs (no cryptographic claims).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A named collection of scenarios plus an optional default store path.
///
/// # Example
///
/// ```
/// use scenarios::Campaign;
///
/// let json = r#"{
///   "name": "demo",
///   "scenarios": [
///     {"name": "baseline", "faults": ["lognormal:0.3"], "seed": 1},
///     {"name": "defects",  "faults": ["stuckat:0.02"],  "seed": 1}
///   ]
/// }"#;
/// let campaign = Campaign::from_json_str(json).unwrap();
/// assert_eq!(campaign.scenarios.len(), 2);
/// let reparsed = Campaign::from_json_str(&campaign.to_json_string()).unwrap();
/// assert_eq!(reparsed, campaign);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name, recorded with every stored result.
    pub name: String,
    /// Default JSONL store path (CLI `--store` overrides it).
    pub store: Option<String>,
    /// The scenarios to run, in order.
    pub scenarios: Vec<Scenario>,
}

impl Campaign {
    /// Creates a campaign with no default store path.
    pub fn new(name: impl Into<String>, scenarios: Vec<Scenario>) -> Self {
        Campaign {
            name: name.into(),
            store: None,
            scenarios,
        }
    }

    /// Builds the JSON form of the campaign (stable key order).
    pub fn to_json(&self) -> Value {
        let mut obj = Value::object();
        obj.insert("name", self.name.as_str());
        if let Some(store) = &self.store {
            obj.insert("store", store.as_str());
        }
        obj.insert(
            "scenarios",
            Value::Array(self.scenarios.iter().map(Scenario::to_json).collect()),
        );
        obj
    }

    /// Compact JSON string of the campaign.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string(&self.to_json())
    }

    /// Pretty JSON string of the campaign.
    pub fn to_json_string_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_json())
    }

    /// Parses a campaign from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Parse`] on malformed structure (including
    /// unknown fields and an empty scenario list) and propagates scenario
    /// errors.
    pub fn from_json(value: &Value) -> Result<Self, CampaignError> {
        let entries = value
            .as_object()
            .ok_or_else(|| CampaignError::Parse("campaign must be a JSON object".into()))?;
        for (key, _) in entries {
            if !["name", "store", "scenarios"].contains(&key.as_str()) {
                return Err(CampaignError::Parse(format!(
                    "unknown campaign field '{key}'"
                )));
            }
        }
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| CampaignError::Parse("campaign needs a string 'name'".into()))?
            .to_string();
        let store = match value.get("store") {
            None => None,
            Some(s) => Some(
                s.as_str()
                    .ok_or_else(|| CampaignError::Parse("'store' must be a string".into()))?
                    .to_string(),
            ),
        };
        let scenario_values = value
            .get("scenarios")
            .and_then(Value::as_array)
            .ok_or_else(|| CampaignError::Parse("campaign needs a 'scenarios' array".into()))?;
        if scenario_values.is_empty() {
            return Err(CampaignError::Parse(
                "campaign has no scenarios to run".into(),
            ));
        }
        let scenarios = scenario_values
            .iter()
            .map(Scenario::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Campaign {
            name,
            store,
            scenarios,
        })
    }

    /// Parses a campaign from JSON text (e.g. a `campaign.json` file).
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::from_json`], plus JSON syntax errors.
    pub fn from_json_str(text: &str) -> Result<Self, CampaignError> {
        let value = serde_json::from_str(text).map_err(|e| CampaignError::Parse(e.to_string()))?;
        Campaign::from_json(&value)
    }
}

fn get_usize(value: &Value, key: &str) -> Result<Option<usize>, CampaignError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n as usize)),
            None => Err(CampaignError::Parse(format!(
                "'{key}' must be a non-negative integer"
            ))),
        },
    }
}

fn get_u64(value: &Value, key: &str) -> Result<Option<u64>, CampaignError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| CampaignError::Parse(format!("'{key}' must be a non-negative integer"))),
    }
}

fn get_f32(value: &Value, key: &str) -> Result<Option<f32>, CampaignError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(|n| Some(n as f32))
            .ok_or_else(|| CampaignError::Parse(format!("'{key}' must be a number"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario() -> Scenario {
        Scenario::new(
            "mixed",
            vec![
                "lognormal:0.3".parse().unwrap(),
                "quantize:16+stuckat:0.01".parse().unwrap(),
            ],
        )
        .seed(7)
        .task(TaskKind::Digits { per_class: 8 })
        .space(SpaceKind::Shared)
        .budgets(5, 3, 2, 3)
    }

    #[test]
    fn scenario_json_round_trips() {
        let sc = sample_scenario();
        let back = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.digest(), sc.digest());
    }

    #[test]
    fn defaults_fill_in_missing_fields() {
        let v = serde_json::from_str(r#"{"name":"minimal","faults":["lognormal:0.5"]}"#).unwrap();
        let sc = Scenario::from_json(&v).unwrap();
        assert_eq!(sc.task, TaskKind::default());
        assert_eq!(sc.space, SpaceKind::PerLayer);
        assert_eq!(sc.seed, 0);
        assert_eq!(sc.trials, 6);
    }

    #[test]
    fn digest_ignores_seed_but_tracks_content() {
        let a = sample_scenario();
        let b = sample_scenario().seed(99);
        assert_eq!(a.digest(), b.digest(), "seed must not affect the digest");
        let mut c = sample_scenario();
        c.mc_samples += 1;
        assert_ne!(a.digest(), c.digest(), "budget change must change digest");
        let mut d = sample_scenario();
        d.faults.pop();
        assert_ne!(a.digest(), d.digest(), "fault change must change digest");
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let v = serde_json::from_str(r#"{"name":"x","faults":["lognormal:0.5"],"mc_smaples":4}"#)
            .unwrap();
        let err = Scenario::from_json(&v).unwrap_err();
        assert!(err.to_string().contains("mc_smaples"), "{err}");
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        for bad in [
            r#"{"name":"x","faults":[]}"#,
            r#"{"name":"x","faults":["lognormal:0.3"],"trials":0}"#,
            r#"{"name":"x","faults":["lognormal:-1"]}"#,
            r#"{"name":"x","faults":["lognormal:0.3"],"task":{"kind":"mnist"}}"#,
            r#"{"name":"x","faults":["lognormal:0.3"],"space":"global"}"#,
            r#"{"name":"","faults":["lognormal:0.3"]}"#,
            r#"{"name":"x","faults":["lognormal:0.3"],"seed":-1}"#,
            r#"{"name":"x","faults":["lognormal:0.3"],"task":{"kind":"moons","samples":4}}"#,
        ] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(Scenario::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn campaign_round_trips_with_store() {
        let mut campaign = Campaign::new("demo", vec![sample_scenario()]);
        campaign.store = Some("out/results.jsonl".into());
        let back = Campaign::from_json_str(&campaign.to_json_string_pretty()).unwrap();
        assert_eq!(back, campaign);
    }

    #[test]
    fn empty_campaigns_are_rejected() {
        assert!(Campaign::from_json_str(r#"{"name":"x","scenarios":[]}"#).is_err());
        assert!(Campaign::from_json_str("not json").is_err());
        assert!(Campaign::from_json_str(r#"{"name":"x"}"#).is_err());
    }

    #[test]
    fn quick_clamp_shrinks_budgets_and_changes_digest() {
        let sc = sample_scenario();
        let quick = sc.clamped_quick();
        assert!(quick.trials <= 3 && quick.mc_samples <= 2);
        assert_ne!(sc.digest(), quick.digest());
        // Clamping an already-small scenario is the identity.
        let small = Scenario::new("s", vec!["lognormal:0.2".parse().unwrap()])
            .budgets(2, 1, 1, 1)
            .task(TaskKind::Moons {
                samples: 100,
                noise: 0.1,
            });
        assert_eq!(small.clamped_quick(), small);
    }
}
