//! Property tests: scenario/campaign serde round-trips over randomized
//! specs, including every fault-model family.

use proptest::prelude::*;
use reram::FaultSpec;
use scenarios::{Campaign, Scenario, SpaceKind, TaskKind};

/// Builds one valid fault spec from drawn primitives; `kind` selects the
/// family, the numeric arguments are kept inside each family's domain.
fn make_spec(kind: u8, p: f32, q: f32, n: u32) -> FaultSpec {
    match kind % 8 {
        0 => FaultSpec::LogNormal { sigma: p },
        1 => FaultSpec::Gaussian { sigma: p },
        2 => FaultSpec::Uniform { delta: p },
        3 => FaultSpec::UniformRead { delta: p },
        4 => FaultSpec::StuckAt {
            p_zero: p.min(0.5),
            p_max: q.min(0.4),
            max_value: 1.0 + q,
        },
        5 => FaultSpec::BitFlip {
            p_flip: p.min(1.0),
            bits: 2 + n % 15,
            range: 0.5 + q,
        },
        6 => FaultSpec::Quantize {
            levels: 2 + n % 64,
            range: 0.5 + q,
        },
        _ => FaultSpec::DeviceVariation { sigma: p },
    }
}

fn make_task(sel: u8, size: usize, noise: f32) -> TaskKind {
    match sel % 3 {
        0 => TaskKind::Moons {
            samples: 20 + size,
            noise,
        },
        1 => TaskKind::Digits {
            per_class: 2 + size % 20,
        },
        _ => TaskKind::Shapes {
            per_class: 2 + size % 20,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `FaultSpec` → string → `FaultSpec` is the identity, including for
    /// composite chains.
    #[test]
    fn fault_spec_string_round_trips(
        kind in 0u8..8, p in 0.0f32..0.9, q in 0.0f32..0.9, n in 0u32..64,
        kind2 in 0u8..8, chain in 0u8..2,
    ) {
        let spec = if chain == 1 {
            FaultSpec::Composite(vec![
                make_spec(kind, p, q, n),
                make_spec(kind2, q, p, n),
            ])
        } else {
            make_spec(kind, p, q, n)
        };
        let printed = spec.to_string();
        let reparsed: FaultSpec = printed.parse().unwrap();
        prop_assert_eq!(&reparsed, &spec);
    }

    /// `Scenario` → JSON → `Scenario` is the identity, and the digest is a
    /// pure function of the round-tripped content.
    #[test]
    fn scenario_json_round_trips(
        kind in 0u8..8, p in 0.0f32..0.9, q in 0.0f32..0.9, n in 0u32..64,
        task_sel in 0u8..3, size in 0usize..200, noise in 0.01f32..0.5,
        space_sel in 0u8..2, trials in 1usize..9, mc in 1usize..6,
        epochs in 0usize..4, seed in 0u64..u64::MAX,
    ) {
        let scenario = Scenario::new(
            format!("case-{kind}-{task_sel}"),
            vec![make_spec(kind, p, q, n)],
        )
        .task(make_task(task_sel, size, noise))
        .space(if space_sel == 0 { SpaceKind::PerLayer } else { SpaceKind::Shared })
        .budgets(trials, mc, epochs, epochs + 1)
        .seed(seed);

        let back = Scenario::from_json(&scenario.to_json()).unwrap();
        prop_assert_eq!(&back, &scenario);
        prop_assert_eq!(back.digest(), scenario.digest());
    }

    /// Whole campaigns survive the text round trip (pretty and compact).
    #[test]
    fn campaign_text_round_trips(
        kind in 0u8..8, p in 0.0f32..0.9, q in 0.0f32..0.9, n in 0u32..64,
        count in 1usize..5, seed in 0u64..1000, with_store in 0u8..2,
    ) {
        let scenarios: Vec<Scenario> = (0..count)
            .map(|i| {
                Scenario::new(
                    format!("s{i}"),
                    vec![make_spec(kind.wrapping_add(i as u8), p, q, n)],
                )
                .seed(seed + i as u64)
            })
            .collect();
        let mut campaign = Campaign::new("prop", scenarios);
        if with_store == 1 {
            campaign.store = Some("out/results.jsonl".into());
        }
        let compact = Campaign::from_json_str(&campaign.to_json_string()).unwrap();
        prop_assert_eq!(&compact, &campaign);
        let pretty = Campaign::from_json_str(&campaign.to_json_string_pretty()).unwrap();
        prop_assert_eq!(&pretty, &campaign);
    }
}
