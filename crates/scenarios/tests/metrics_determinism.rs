//! Telemetry counters are deterministic per campaign: running the same
//! campaign through two fresh runners moves `campaign_engine_runs_total`
//! by the same amount, and re-running through the *same* runner converts
//! every engine run into a cache hit.
//!
//! This file holds exactly one test: the counters are process-global, so
//! sharing a binary with concurrently-running tests would make the deltas
//! racy. As its own integration test it owns the whole process.

use scenarios::{Campaign, CampaignRunner, Scenario, TaskKind};

fn campaign() -> Campaign {
    let tiny = |name: &str, sigma: &str, seed: u64| {
        Scenario::new(name, vec![format!("lognormal:{sigma}").parse().unwrap()])
            .seed(seed)
            .budgets(3, 2, 1, 1)
            .task(TaskKind::Moons {
                samples: 80,
                noise: 0.1,
            })
    };
    Campaign::new(
        "determinism",
        vec![tiny("a", "0.3", 5), tiny("b", "0.6", 5)],
    )
}

#[test]
fn engine_run_and_cache_hit_counters_are_deterministic() {
    let engine_runs = telemetry::static_counter!("campaign_engine_runs_total");
    let cache_hits = telemetry::static_counter!("campaign_cache_hits_total");
    let campaign = campaign();

    // Same campaign, two fresh runners: identical counter deltas.
    let mut deltas = Vec::new();
    for _ in 0..2 {
        let runner = CampaignRunner::new().quick(true);
        let before = (engine_runs.get(), cache_hits.get());
        let report = runner.run_campaign_report(&campaign, None).unwrap();
        assert_eq!(report.completed, 2);
        deltas.push((engine_runs.get() - before.0, cache_hits.get() - before.1));
    }
    assert_eq!(
        deltas[0], deltas[1],
        "the same campaign must move the counters identically on every fresh run"
    );
    assert_eq!(
        deltas[0],
        (2, 0),
        "two distinct scenarios: two engine runs, no cache hits"
    );

    // Same runner again: the memo cache serves everything.
    let runner = CampaignRunner::new().quick(true);
    let _ = runner.run_campaign_report(&campaign, None).unwrap();
    let before = (engine_runs.get(), cache_hits.get());
    let report = runner.run_campaign_report(&campaign, None).unwrap();
    assert_eq!(report.cache_served, 2);
    assert_eq!(
        (engine_runs.get() - before.0, cache_hits.get() - before.1),
        (0, 2),
        "a warm runner re-running the campaign must be all cache hits"
    );
}
