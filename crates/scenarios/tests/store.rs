//! Crash-safety tests for the JSONL result store: truncated-tail
//! tolerance, partial-tail repair, and atomic deduplicating compaction —
//! all on hand-written files, no engine runs needed.

use std::fs;
use std::path::PathBuf;

use scenarios::ResultStore;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bayesft-store-{}-{tag}.jsonl", std::process::id()))
}

/// A minimal valid record line for `(digest, seed)` with a given scenario
/// name and objective.
fn line(digest: &str, seed: u64, scenario: &str, objective: f64, wall: f64) -> String {
    format!(
        concat!(
            r#"{{"campaign":"t","scenario":"{}","digest":"{}","seed":{},"faults":["lognormal:0.3"],"#,
            r#""from_cache":false,"from_store":false,"wall_ms":{},"compute_wall_ms":{},"#,
            r#""report":{{"space":"per_layer","objective":"o","dim":1,"seed":{},"parallelism":1,"#,
            r#""trials":[],"best_alpha":[0.5],"best_objective":{},"#,
            r#""timings":{{"suggest_ms":1,"train_ms":2,"eval_ms":3,"finetune_ms":4,"total_ms":10}}}}}}"#,
        ),
        scenario, digest, seed, wall, wall, seed, objective
    )
}

#[test]
fn missing_store_loads_empty_and_compacts_to_nothing() {
    let store = ResultStore::open(temp_path("missing"));
    let _ = fs::remove_file(store.path());
    assert!(store.load().unwrap().is_empty());
    assert!(store.drop_partial_tail().unwrap().is_none());
    let summary = store.compact().unwrap();
    assert_eq!(summary.kept, 0);
    assert!(!store.path().exists(), "compacting nothing creates nothing");
}

#[test]
fn truncated_trailing_line_is_skipped_with_a_warning() {
    let store = ResultStore::open(temp_path("trunc"));
    let text = format!(
        "{}\n{}\n{}",
        line("aaaa", 1, "s0", 0.5, 10.0),
        line("bbbb", 1, "s1", 0.6, 11.0),
        r#"{"campaign":"t","scenario":"s2","dig"#, // killed mid-append
    );
    fs::write(store.path(), text).unwrap();

    let (records, warnings) = store.load_lenient().unwrap();
    assert_eq!(records.len(), 2, "the two complete lines survive");
    assert_eq!(records[1].scenario, "s1");
    assert_eq!(warnings.len(), 1);
    assert!(
        warnings[0].contains("truncated trailing line"),
        "{warnings:?}"
    );
    assert!(
        warnings[0].contains(":3"),
        "warning names the line: {warnings:?}"
    );
    // The tolerant plain load agrees.
    assert_eq!(store.load().unwrap().len(), 2);
    let _ = fs::remove_file(store.path());
}

#[test]
fn truncation_mid_multibyte_character_is_tolerated() {
    // A crash can cut the file inside a multi-byte UTF-8 character; that
    // must degrade into the tolerated truncated-tail case, not a fatal
    // whole-file decode error.
    let store = ResultStore::open(temp_path("utf8"));
    let good = line("aaaa", 1, "s0", 0.5, 10.0);
    let tail = r#"{"campaign":"t","scenario":"café"#.as_bytes();
    let mut bytes = format!("{good}\n").into_bytes();
    bytes.extend_from_slice(&tail[..tail.len() - 1]); // cut inside 'é'
    fs::write(store.path(), bytes).unwrap();

    let (records, warnings) = store.load_lenient().unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(warnings.len(), 1);
    assert!(warnings[0].contains("UTF-8"), "{warnings:?}");
    assert!(store.drop_partial_tail().unwrap().is_some());
    assert_eq!(store.load().unwrap().len(), 1);
    let _ = fs::remove_file(store.path());
}

#[test]
fn newline_terminated_malformed_final_line_is_fatal() {
    // A complete (newline-terminated) malformed line is corruption, not a
    // crash artifact — tolerating it would let the next append bury it
    // mid-file and poison every later load.
    let store = ResultStore::open(temp_path("terminated"));
    let text = format!(
        "{}\n{{\"not\":\"a record\"}}\n",
        line("aaaa", 1, "s0", 0.5, 10.0)
    );
    fs::write(store.path(), text).unwrap();
    let err = store.load().unwrap_err();
    assert!(err.to_string().contains(":2"), "{err}");
    assert!(
        store.drop_partial_tail().unwrap().is_none(),
        "a terminated line is not a partial tail"
    );
    let _ = fs::remove_file(store.path());
}

#[test]
fn corrupt_non_trailing_line_is_still_fatal() {
    let store = ResultStore::open(temp_path("corrupt"));
    let text = format!(
        "{}\nnot json at all\n{}\n",
        line("aaaa", 1, "s0", 0.5, 10.0),
        line("bbbb", 1, "s1", 0.6, 11.0),
    );
    fs::write(store.path(), text).unwrap();
    let err = store.load().unwrap_err();
    assert!(err.to_string().contains(":2"), "{err}");
    let _ = fs::remove_file(store.path());
}

#[test]
fn drop_partial_tail_repairs_for_future_appends() {
    let store = ResultStore::open(temp_path("repair"));
    let good = line("aaaa", 1, "s0", 0.5, 10.0);
    fs::write(store.path(), format!("{good}\n{{\"half\":")).unwrap();

    let dropped = store.drop_partial_tail().unwrap();
    assert!(dropped.unwrap().contains("partial trailing line"));
    let bytes = fs::read(store.path()).unwrap();
    assert!(bytes.ends_with(b"\n"), "file ends on a line boundary again");
    assert_eq!(store.load().unwrap().len(), 1);
    // Idempotent once clean.
    assert!(store.drop_partial_tail().unwrap().is_none());
    let _ = fs::remove_file(store.path());
}

#[test]
fn compact_dedups_by_digest_seed_keeping_latest_in_first_position() {
    let store = ResultStore::open(temp_path("dedup"));
    let text = format!(
        "{}\n{}\n{}\n{}\n{}",
        line("aaaa", 1, "s0", 0.5, 10.0),
        line("bbbb", 2, "s1", 0.6, 11.0),
        line("aaaa", 1, "s0-rerun", 0.5, 12.0), // same key, later record
        line("aaaa", 7, "s0-other-seed", 0.4, 13.0), // same digest, new seed
        r#"{"trunca"#,
    );
    fs::write(store.path(), text).unwrap();

    let summary = store.compact().unwrap();
    assert_eq!(summary.kept, 3);
    assert_eq!(summary.dropped_duplicates, 1);
    assert!(summary.dropped_truncated);

    let records = store.load().unwrap();
    assert_eq!(records.len(), 3);
    // Latest payload, first-appearance position.
    assert_eq!(records[0].scenario, "s0-rerun");
    assert_eq!(records[1].scenario, "s1");
    assert_eq!(records[2].scenario, "s0-other-seed");
    // Measurement fields are canonicalized away...
    assert_eq!(records[0].wall_ms, 0.0);
    assert_eq!(records[0].compute_wall_ms, 0.0);
    assert!(records[0].raw.get("from_cache").is_none());
    assert!(records[0]
        .raw
        .get("report")
        .unwrap()
        .get("timings")
        .is_none());
    // ...but the deterministic content survives.
    assert_eq!(records[0].best_alpha, vec![0.5]);
    assert_eq!(records[2].seed, 7);

    // Compaction is idempotent: a second pass changes nothing.
    let before = fs::read(store.path()).unwrap();
    let summary2 = store.compact().unwrap();
    assert_eq!(summary2.kept, 3);
    assert_eq!(summary2.dropped_duplicates, 0);
    assert!(!summary2.dropped_truncated);
    assert_eq!(fs::read(store.path()).unwrap(), before);
    let _ = fs::remove_file(store.path());
}

#[test]
fn nan_objectives_serialized_as_null_do_not_poison_the_store() {
    // A fully-diverged scenario reports best_objective = NaN, which the
    // vendored serializer writes as JSON null. The record must stay
    // loadable (null → NaN), and two NaN runs must count as reproducing
    // each other in the compare audit.
    let store = ResultStore::open(temp_path("nan"));
    let nan_line = line("aaaa", 1, "diverged", 0.0, 10.0)
        .replace(r#""best_objective":0"#, r#""best_objective":null"#)
        .replace(r#""best_alpha":[0.5]"#, r#""best_alpha":[null]"#);
    fs::write(store.path(), format!("{nan_line}\n{nan_line}\n")).unwrap();

    let records = store.load().unwrap();
    assert_eq!(records.len(), 2);
    assert!(records[0].best_objective.is_nan());
    assert!(records[0].best_alpha[0].is_nan());

    let groups = store.compare().unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].runs, 2);
    assert!(
        groups[0].identical,
        "two NaN runs reproduce each other (NaN != NaN must not diverge the audit)"
    );

    // A NaN run vs a finite run IS a divergence.
    let finite = line("aaaa", 1, "diverged", 0.5, 10.0);
    fs::write(store.path(), format!("{nan_line}\n{finite}\n")).unwrap();
    assert!(!store.compare().unwrap()[0].identical);

    // And compaction still works on NaN records.
    let summary = store.compact().unwrap();
    assert_eq!(summary.kept, 1);
    assert_eq!(summary.dropped_duplicates, 1);
    let _ = fs::remove_file(store.path());
}

#[test]
fn compare_reports_real_compute_cost_across_cache_hits() {
    let store = ResultStore::open(temp_path("cost"));
    // A cache-served record (serving cost 0, original compute preserved)
    // followed by a fresh run: compare must surface a real cost either
    // way, falling back past zero-wall records.
    let cached =
        line("aaaa", 1, "s0", 0.5, 0.0).replace(r#""from_cache":false"#, r#""from_cache":true"#);
    let text = format!("{cached}\n{}\n", line("aaaa", 1, "s0", 0.5, 10.0));
    fs::write(store.path(), text).unwrap();

    let records = store.load().unwrap();
    assert!(records[0].from_cache);
    assert_eq!(records[0].wall_ms, 0.0);
    assert_eq!(records[1].compute_wall_ms, 10.0);

    let groups = store.compare().unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].runs, 2);
    assert!(groups[0].identical);
    assert_eq!(
        groups[0].compute_wall_ms, 10.0,
        "compare falls back past zero-wall serving records to a real cost"
    );
    let _ = fs::remove_file(store.path());
}

#[test]
fn compare_sums_fresh_compute_cost_and_falls_back_to_max_for_replays() {
    let store = ResultStore::open(temp_path("cost-agg"));
    // Two *fresh* engine runs of the same key (a re-run without --resume)
    // both paid real compute: the group's cost is their SUM, not the
    // first non-zero value.
    let text = format!(
        "{}\n{}\n",
        line("aaaa", 1, "s0", 0.5, 10.0),
        line("aaaa", 1, "s0", 0.5, 7.0),
    );
    fs::write(store.path(), text).unwrap();
    let groups = store.compare().unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(
        groups[0].compute_wall_ms, 17.0,
        "every fresh run paid for its own engine run; the group cost sums them"
    );

    // All-replay group (e.g. two --resume passes): every record merely
    // preserves the original run's timing, so summing would double-count.
    // The group cost falls back to the max preserved value.
    let replay = |ms: f64| {
        line("bbbb", 2, "s1", 0.5, ms).replace(r#""from_store":false"#, r#""from_store":true"#)
    };
    fs::write(store.path(), format!("{}\n{}\n", replay(9.0), replay(9.0))).unwrap();
    let groups = store.compare().unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].runs, 2);
    assert_eq!(
        groups[0].compute_wall_ms, 9.0,
        "replays preserve one original run's cost; max, not sum, avoids double-counting"
    );
    let _ = fs::remove_file(store.path());
}

#[test]
fn held_lock_blocks_a_second_writer() {
    let store = ResultStore::open(temp_path("lock"));
    let _ = fs::remove_file(store.path());
    let _ = fs::remove_file(store.lock_path());
    fs::write(
        store.path(),
        format!("{}\n", line("aaaa", 1, "s0", 0.5, 1.0)),
    )
    .unwrap();

    // First writer takes the advisory lock…
    let guard = store.lock().expect("uncontended lock");
    assert!(
        store.lock_path().exists(),
        "lock file sits beside the store"
    );

    // …so a second handle (as another process would) cannot acquire it,
    // and its compaction fails after the bounded wait instead of racing
    // the holder's writes.
    let second = ResultStore::open(store.path());
    assert!(
        second.try_lock().unwrap().is_none(),
        "lock must be exclusive"
    );
    let err = second
        .lock_waiting(std::time::Duration::from_millis(50))
        .unwrap_err();
    assert!(
        matches!(err, scenarios::CampaignError::Locked(_)),
        "expected Locked, got {err:?}"
    );
    let msg = err.to_string();
    assert!(msg.contains(".lock"), "error names the lock file: {msg}");
    assert!(
        msg.contains(&format!("pid {}", std::process::id())),
        "error names the holder: {msg}"
    );

    // Releasing the guard unblocks the second writer.
    drop(guard);
    let summary = second.compact().expect("lock released, compaction runs");
    assert_eq!(summary.kept, 1);
    let _ = fs::remove_file(store.path());
    let _ = fs::remove_file(store.lock_path());
}

#[test]
fn leftover_lock_file_from_dead_holder_does_not_wedge_the_store() {
    // The mutual exclusion is a kernel advisory lock, not the lock file's
    // existence: a file left behind by a crashed (or long-gone) holder is
    // simply re-locked, so crash recovery never needs manual cleanup.
    let store = ResultStore::open(temp_path("stale-lock"));
    let _ = fs::remove_file(store.lock_path());
    fs::write(store.lock_path(), "424242").unwrap(); // nobody holds this
    let guard = store
        .lock_waiting(std::time::Duration::from_millis(30))
        .expect("an unheld lock file must be acquirable");
    // The new holder re-tags the file with its own PID.
    assert_eq!(
        fs::read_to_string(store.lock_path()).unwrap().trim(),
        std::process::id().to_string()
    );
    drop(guard);
    let _ = fs::remove_file(store.lock_path());
}

/// Injects the pre-compaction campaign position into a record line, the
/// way a sharded `campaign run` persists it.
fn line_at(pos: usize, digest: &str, seed: u64, scenario: &str, objective: f64) -> String {
    line(digest, seed, scenario, objective, 10.0).replace(
        "\"report\":{",
        &format!("\"report\":{{\"scenario_index\":{pos},\"scenario_total\":4,"),
    )
}

#[test]
fn merge_reconstructs_campaign_order_from_persisted_positions() {
    // Two "processes" partitioned one 4-scenario campaign by index
    // parity; each store holds its owned half in campaign order.
    let odd = ResultStore::open(temp_path("merge-odd"));
    fs::write(
        odd.path(),
        format!(
            "{}\n{}\n",
            line_at(1, "bbbb", 1, "s1", 0.6),
            line_at(3, "dddd", 1, "s3", 0.8),
        ),
    )
    .unwrap();
    let even = ResultStore::open(temp_path("merge-even"));
    fs::write(
        even.path(),
        format!(
            "{}\n{}\n",
            line_at(0, "aaaa", 1, "s0", 0.5),
            line_at(2, "cccc", 1, "s2", 0.7),
        ),
    )
    .unwrap();

    // Input order is the "wrong" one on purpose: the persisted positions,
    // not the argument order, dictate the merged order.
    let merged = ResultStore::open(temp_path("merge-out"));
    let summary = merged.merge_from(&[odd.clone(), even.clone()]).unwrap();
    assert_eq!(summary.inputs, 2);
    assert_eq!(summary.records, 4);
    assert_eq!(summary.kept, 4);
    assert_eq!(summary.dropped_duplicates, 0);
    assert!(summary.conflicts.is_empty());

    let records = merged.load().unwrap();
    let order: Vec<&str> = records.iter().map(|r| r.scenario.as_str()).collect();
    assert_eq!(order, ["s0", "s1", "s2", "s3"], "campaign order restored");
    // The merged store is compacted: positions are stripped like any
    // other volatile field.
    assert!(records[0]
        .raw
        .get("report")
        .unwrap()
        .get("scenario_index")
        .is_none());

    for store in [&odd, &even, &merged] {
        let _ = fs::remove_file(store.path());
    }
}

#[test]
fn merge_surfaces_conflicting_payloads_instead_of_silently_keeping_one() {
    // Both inputs claim the same (digest, seed); one "reproduction"
    // diverged. The merge must keep going (latest wins) but say so.
    let a = ResultStore::open(temp_path("conflict-a"));
    fs::write(
        a.path(),
        format!(
            "{}\n{}\n",
            line("aaaa", 1, "shared", 0.5, 10.0),
            line("bbbb", 2, "clean", 0.6, 11.0),
        ),
    )
    .unwrap();
    let b = ResultStore::open(temp_path("conflict-b"));
    fs::write(
        b.path(),
        format!(
            "{}\n{}\n",
            line("aaaa", 1, "shared", 0.9, 12.0), // diverged payload
            line("bbbb", 2, "clean", 0.6, 13.0),  // faithful reproduction
        ),
    )
    .unwrap();

    let merged = ResultStore::open(temp_path("conflict-out"));
    let summary = merged.merge_from(&[a.clone(), b.clone()]).unwrap();
    assert_eq!(summary.records, 4);
    assert_eq!(summary.kept, 2);
    assert_eq!(summary.dropped_duplicates, 2);
    assert_eq!(
        summary.conflicts.len(),
        1,
        "only the diverged group is a conflict: {:?}",
        summary.conflicts
    );
    assert!(
        summary.conflicts[0].contains("aaaa") && summary.conflicts[0].contains("shared"),
        "the conflict names the group: {}",
        summary.conflicts[0]
    );

    // Latest record won (input order breaks the no-position tie).
    let records = merged.load().unwrap();
    let shared = records.iter().find(|r| r.scenario == "shared").unwrap();
    assert_eq!(shared.best_objective, 0.9);

    for store in [&a, &b, &merged] {
        let _ = fs::remove_file(store.path());
    }
}

#[test]
fn second_writer_queues_behind_a_held_lock_instead_of_failing() {
    use std::time::{Duration, Instant};

    let store = ResultStore::open(temp_path("lock-queue"));
    let guard = store.try_lock().unwrap().unwrap();
    let path = store.path().to_path_buf();
    let waiter = std::thread::spawn(move || {
        let other = ResultStore::open(path);
        let started = Instant::now();
        let _guard = other
            .lock_waiting(Duration::from_secs(5))
            .expect("a queued writer must eventually acquire, not fail");
        started.elapsed()
    });
    // Hold the lock long enough that an error-on-contention implementation
    // would have failed, then release.
    std::thread::sleep(Duration::from_millis(200));
    drop(guard);
    let waited = waiter.join().unwrap();
    assert!(
        waited >= Duration::from_millis(150),
        "the second writer should have queued behind the holder, waited {waited:?}"
    );
    let _ = fs::remove_file(store.path());
    let _ = fs::remove_file(store.lock_path());
}
