//! End-to-end campaign tests: runner determinism, parallel/serial report
//! identity, memoization, and the JSONL store's reproducibility audit.

use std::path::PathBuf;

use scenarios::{Campaign, CampaignRunner, ResultStore, Scenario, SpaceKind, TaskKind};

fn tiny(name: &str, faults: &[&str], seed: u64) -> Scenario {
    Scenario::new(name, faults.iter().map(|f| f.parse().unwrap()).collect())
        .seed(seed)
        .budgets(3, 2, 1, 1)
        .task(TaskKind::Moons {
            samples: 80,
            noise: 0.1,
        })
}

fn demo_campaign() -> Campaign {
    Campaign::new(
        "e2e",
        vec![
            tiny("lognormal", &["lognormal:0.5"], 3),
            tiny("defects", &["stuckat:0.05,0.02,2", "bitflip:0.005"], 3),
            tiny("pipeline", &["quantize:16+lognormal:0.3"], 9).space(SpaceKind::Shared),
        ],
    )
}

fn temp_store(tag: &str) -> ResultStore {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "bayesft-campaign-{}-{tag}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    ResultStore::open(path)
}

#[test]
fn campaign_runs_are_deterministic_across_runners() {
    let campaign = demo_campaign();
    let first: Vec<_> = CampaignRunner::new()
        .run_campaign(&campaign)
        .into_iter()
        .map(|r| r.result.unwrap())
        .collect();
    let second: Vec<_> = CampaignRunner::new()
        .run_campaign(&campaign)
        .into_iter()
        .map(|r| r.result.unwrap())
        .collect();
    assert_eq!(first.len(), 3);
    for (a, b) in first.iter().zip(&second) {
        assert!(!b.from_cache, "fresh runner must not share a cache");
        assert!(
            a.report.deterministic_eq(&b.report),
            "{} diverged across runs",
            a.scenario.name
        );
        assert_eq!(a.digest, b.digest);
    }
    // Distinct scenarios produce distinct digests and (here) distinct
    // optima traces.
    assert_ne!(first[0].digest, first[1].digest);
    assert_ne!(first[0].digest, first[2].digest);
}

#[test]
fn parallel_and_serial_campaigns_report_identically() {
    let campaign = demo_campaign();
    let serial = CampaignRunner::new().run_campaign(&campaign);
    let parallel = CampaignRunner::new().parallelism(4).run_campaign(&campaign);
    for (s, p) in serial.iter().zip(&parallel) {
        let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert!(
            s.report.deterministic_eq(&p.report),
            "{}: parallel run diverged from serial",
            s.scenario.name
        );
        assert_eq!(
            s.report.trials, p.report.trials,
            "per-trial records must be bit-identical"
        );
    }
}

#[test]
fn store_round_trips_and_compare_confirms_reproducibility() {
    let campaign = demo_campaign();
    let store = temp_store("compare");

    // Two independent runs with the same seeds, both persisted.
    for _ in 0..2 {
        let mut runner = CampaignRunner::new();
        for run in runner.run_campaign(&campaign) {
            store.append(&campaign.name, &run.result.unwrap()).unwrap();
        }
    }

    let records = store.load().unwrap();
    assert_eq!(records.len(), 6, "3 scenarios x 2 runs");
    assert!(records.iter().all(|r| r.campaign == "e2e"));
    assert!(records
        .iter()
        .any(|r| r.faults == vec!["stuckat:0.05,0.02,2".to_string(), "bitflip:0.005".into()]));

    let groups = store.compare().unwrap();
    assert_eq!(groups.len(), 3, "grouped by (digest, seed)");
    for g in &groups {
        assert_eq!(g.runs, 2);
        assert!(
            g.identical,
            "{}: second run failed to reproduce best alpha bit-identically",
            g.scenario
        );
        assert!(!g.best_alpha.is_empty());
    }

    let _ = std::fs::remove_file(store.path());
}

#[test]
fn compare_detects_divergence() {
    let campaign = Campaign::new("div", vec![tiny("ln", &["lognormal:0.5"], 3)]);
    let store = temp_store("divergence");
    let mut runner = CampaignRunner::new();
    let outcome = runner.run_scenario(&campaign.scenarios[0]).unwrap();
    store.append(&campaign.name, &outcome).unwrap();
    // Tamper with a second copy: same digest and seed, different best α.
    let mut forged = outcome.clone();
    forged.report.best_alpha[0] += 1e-9;
    store.append(&campaign.name, &forged).unwrap();

    let groups = store.compare().unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].runs, 2);
    assert!(
        !groups[0].identical,
        "a 1e-9 drift in best alpha must be caught"
    );

    let _ = std::fs::remove_file(store.path());
}

#[test]
fn memoization_spans_a_campaign() {
    // The same scenario content under two names runs the engine once.
    let campaign = Campaign::new(
        "memo",
        vec![
            tiny("first", &["lognormal:0.5"], 3),
            tiny("alias-of-first", &["lognormal:0.5"], 3),
        ],
    );
    let mut runner = CampaignRunner::new();
    let runs = runner.run_campaign(&campaign);
    let a = runs[0].result.as_ref().unwrap();
    let b = runs[1].result.as_ref().unwrap();
    assert!(!a.from_cache);
    assert!(b.from_cache, "identical content must be memoized");
    assert_eq!(runner.cached_runs(), 1);
    assert_eq!(a.report.best_alpha, b.report.best_alpha);
    assert_eq!(
        b.report.scenario.as_ref().unwrap().name,
        "alias-of-first",
        "cache hits keep their own scenario name"
    );
}

#[test]
fn the_example_campaign_file_parses_and_clamps() {
    let text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/campaign.json"),
    )
    .unwrap();
    let campaign = Campaign::from_json_str(&text).unwrap();
    assert!(campaign.scenarios.len() >= 3, "acceptance: >= 3 scenarios");
    let fault_families: std::collections::BTreeSet<String> = campaign
        .scenarios
        .iter()
        .flat_map(|s| s.faults.iter().map(|f| f.to_string()))
        .collect();
    assert!(fault_families.len() >= 2, "acceptance: >= 2 fault models");
    for sc in &campaign.scenarios {
        sc.validate().unwrap();
        let quick = sc.clamped_quick();
        assert!(quick.trials <= 3 && quick.mc_samples <= 2);
    }
}
