//! End-to-end campaign tests: runner determinism, parallel/serial report
//! identity, memoization, and the JSONL store's reproducibility audit.

use std::path::PathBuf;

use scenarios::{Campaign, CampaignRunner, ResultStore, Scenario, SpaceKind, TaskKind};

fn tiny(name: &str, faults: &[&str], seed: u64) -> Scenario {
    Scenario::new(name, faults.iter().map(|f| f.parse().unwrap()).collect())
        .seed(seed)
        .budgets(3, 2, 1, 1)
        .task(TaskKind::Moons {
            samples: 80,
            noise: 0.1,
        })
}

fn demo_campaign() -> Campaign {
    Campaign::new(
        "e2e",
        vec![
            tiny("lognormal", &["lognormal:0.5"], 3),
            tiny("defects", &["stuckat:0.05,0.02,2", "bitflip:0.005"], 3),
            tiny("pipeline", &["quantize:16+lognormal:0.3"], 9).space(SpaceKind::Shared),
        ],
    )
}

fn temp_store(tag: &str) -> ResultStore {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "bayesft-campaign-{}-{tag}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    ResultStore::open(path)
}

#[test]
fn campaign_runs_are_deterministic_across_runners() {
    let campaign = demo_campaign();
    let first: Vec<_> = CampaignRunner::new()
        .run_campaign(&campaign)
        .into_iter()
        .map(|r| r.result.unwrap())
        .collect();
    let second: Vec<_> = CampaignRunner::new()
        .run_campaign(&campaign)
        .into_iter()
        .map(|r| r.result.unwrap())
        .collect();
    assert_eq!(first.len(), 3);
    for (a, b) in first.iter().zip(&second) {
        assert!(!b.from_cache, "fresh runner must not share a cache");
        assert!(
            a.report.deterministic_eq(&b.report),
            "{} diverged across runs",
            a.scenario.name
        );
        assert_eq!(a.digest, b.digest);
    }
    // Distinct scenarios produce distinct digests and (here) distinct
    // optima traces.
    assert_ne!(first[0].digest, first[1].digest);
    assert_ne!(first[0].digest, first[2].digest);
}

#[test]
fn parallel_and_serial_campaigns_report_identically() {
    let campaign = demo_campaign();
    let serial = CampaignRunner::new().run_campaign(&campaign);
    let parallel = CampaignRunner::new().parallelism(4).run_campaign(&campaign);
    for (s, p) in serial.iter().zip(&parallel) {
        let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert!(
            s.report.deterministic_eq(&p.report),
            "{}: parallel run diverged from serial",
            s.scenario.name
        );
        assert_eq!(
            s.report.trials, p.report.trials,
            "per-trial records must be bit-identical"
        );
    }
}

#[test]
fn store_round_trips_and_compare_confirms_reproducibility() {
    let campaign = demo_campaign();
    let store = temp_store("compare");

    // Two independent runs with the same seeds, both persisted.
    for _ in 0..2 {
        let runner = CampaignRunner::new();
        for run in runner.run_campaign(&campaign) {
            store.append(&campaign.name, &run.result.unwrap()).unwrap();
        }
    }

    let records = store.load().unwrap();
    assert_eq!(records.len(), 6, "3 scenarios x 2 runs");
    assert!(records.iter().all(|r| r.campaign == "e2e"));
    assert!(records
        .iter()
        .any(|r| r.faults == vec!["stuckat:0.05,0.02,2".to_string(), "bitflip:0.005".into()]));

    let groups = store.compare().unwrap();
    assert_eq!(groups.len(), 3, "grouped by (digest, seed)");
    for g in &groups {
        assert_eq!(g.runs, 2);
        assert!(
            g.identical,
            "{}: second run failed to reproduce best alpha bit-identically",
            g.scenario
        );
        assert!(!g.best_alpha.is_empty());
    }

    let _ = std::fs::remove_file(store.path());
}

#[test]
fn compare_detects_divergence() {
    let campaign = Campaign::new("div", vec![tiny("ln", &["lognormal:0.5"], 3)]);
    let store = temp_store("divergence");
    let runner = CampaignRunner::new();
    let outcome = runner.run_scenario(&campaign.scenarios[0]).unwrap();
    store.append(&campaign.name, &outcome).unwrap();
    // Tamper with a second copy: same digest and seed, different best α.
    let mut forged = outcome.clone();
    forged.report.best_alpha[0] += 1e-9;
    store.append(&campaign.name, &forged).unwrap();

    let groups = store.compare().unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].runs, 2);
    assert!(
        !groups[0].identical,
        "a 1e-9 drift in best alpha must be caught"
    );

    let _ = std::fs::remove_file(store.path());
}

#[test]
fn memoization_spans_a_campaign() {
    // The same scenario content under two names runs the engine once.
    let campaign = Campaign::new(
        "memo",
        vec![
            tiny("first", &["lognormal:0.5"], 3),
            tiny("alias-of-first", &["lognormal:0.5"], 3),
        ],
    );
    let runner = CampaignRunner::new();
    let runs = runner.run_campaign(&campaign);
    let a = runs[0].result.as_ref().unwrap();
    let b = runs[1].result.as_ref().unwrap();
    assert!(!a.from_cache);
    assert!(b.from_cache, "identical content must be memoized");
    assert_eq!(runner.cached_runs(), 1);
    assert_eq!(a.report.best_alpha, b.report.best_alpha);
    assert_eq!(
        b.report.scenario.as_ref().unwrap().name,
        "alias-of-first",
        "cache hits keep their own scenario name"
    );
}

/// The campaign the sharding/resume tests sweep: four scenarios, one of
/// which is a content-alias of the first (exercising the memo/dedup paths
/// under every scheduler).
fn shard_campaign() -> Campaign {
    Campaign::new(
        "shards",
        vec![
            tiny("lognormal", &["lognormal:0.5"], 3),
            tiny("defects", &["stuckat:0.05,0.02,2", "bitflip:0.005"], 3),
            tiny("pipeline", &["quantize:16+lognormal:0.3"], 9).space(SpaceKind::Shared),
            tiny("lognormal-alias", &["lognormal:0.5"], 3),
        ],
    )
}

#[test]
fn shard_sweep_produces_byte_identical_compacted_stores() {
    let campaign = shard_campaign();
    let mut compacted: Vec<Vec<u8>> = Vec::new();
    for shards in [1usize, 2, 5] {
        let store = temp_store(&format!("shards{shards}"));
        let runner = CampaignRunner::new().shards(shards);
        let report = runner.run_campaign_report(&campaign, Some(&store)).unwrap();
        assert_eq!(report.shards, shards.min(campaign.scenarios.len()));
        assert_eq!(report.completed, 4, "shards={shards}");
        assert_eq!(report.failed, 0);
        assert_eq!(
            report.cache_served, 1,
            "shards={shards}: the alias is served by exactly one cached \
             compute — the in-flight reservation forbids duplicate engine runs"
        );
        assert_eq!(report.shard_wall_ms.len(), report.shards);
        // Results come back in campaign order whatever the shard count.
        for (run, sc) in report.runs.iter().zip(&campaign.scenarios) {
            assert_eq!(run.name, sc.name, "shards={shards}");
        }
        store.compact().unwrap();
        compacted.push(std::fs::read(store.path()).unwrap());
        let _ = std::fs::remove_file(store.path());
    }
    assert_eq!(
        compacted[0], compacted[1],
        "2-shard compacted store diverged from serial"
    );
    assert_eq!(
        compacted[0], compacted[2],
        "5-shard compacted store diverged from serial"
    );
    assert!(!compacted[0].is_empty());
}

/// Cross-process sharding: N runners with `shard_of(i, n)` slices writing
/// to N separate stores, merged back into one — the `campaign run
/// --shard-index` / `campaign merge` flow, in-process.
#[test]
fn shard_slices_merge_to_serial_bytes() {
    let campaign = shard_campaign();

    // Reference: a plain serial run, compacted.
    let serial_store = temp_store("slice-serial");
    CampaignRunner::new()
        .run_campaign_report(&campaign, Some(&serial_store))
        .unwrap();
    serial_store.compact().unwrap();
    let serial_bytes = std::fs::read(serial_store.path()).unwrap();

    // "Two processes": independent runners (no shared cache), each owning
    // half the scenario indices, each persisting to its own store.
    let slice_stores: Vec<ResultStore> = (0..2)
        .map(|index| {
            let store = temp_store(&format!("slice{index}"));
            let runner = CampaignRunner::new().shard_of(index, 2).unwrap();
            let report = runner.run_campaign_report(&campaign, Some(&store)).unwrap();
            assert_eq!(report.completed, 2, "slice {index} owns half");
            assert_eq!(report.skipped, 2, "the other half belongs to the sibling");
            assert_eq!(report.failed, 0);
            assert!(!report.cancelled);
            // Owned scenarios keep their full-campaign positions.
            for run in &report.runs {
                assert_eq!(run.index % 2, index);
                assert_eq!(run.total, 4);
            }
            store
        })
        .collect();

    // Merge order must not matter: the persisted campaign positions, not
    // input order, reconstruct the serial append order.
    for (tag, inputs) in [("fwd", [0, 1]), ("rev", [1, 0])] {
        let merged = temp_store(&format!("slice-merged-{tag}"));
        let ordered: Vec<ResultStore> = inputs.iter().map(|&i| slice_stores[i].clone()).collect();
        let summary = merged.merge_from(&ordered).unwrap();
        assert_eq!(summary.inputs, 2);
        assert_eq!(summary.records, 4);
        assert_eq!(summary.kept, 3, "the alias folds into its original");
        assert_eq!(summary.dropped_duplicates, 1);
        assert!(summary.conflicts.is_empty(), "{:?}", summary.conflicts);
        assert_eq!(
            std::fs::read(merged.path()).unwrap(),
            serial_bytes,
            "merged {tag} store diverged from the serial reference"
        );
        let _ = std::fs::remove_file(merged.path());
    }

    assert!(
        CampaignRunner::new().shard_of(2, 2).is_err(),
        "shard index out of range must be rejected"
    );
    assert!(CampaignRunner::new().shard_of(0, 0).is_err());

    let _ = std::fs::remove_file(serial_store.path());
    for store in &slice_stores {
        let _ = std::fs::remove_file(store.path());
    }
}

#[test]
fn sharded_reports_are_deterministically_equal_to_serial() {
    let campaign = shard_campaign();
    let serial = CampaignRunner::new().run_campaign(&campaign);
    let sharded = CampaignRunner::new().shards(3).run_campaign(&campaign);
    for (s, p) in serial.iter().zip(&sharded) {
        let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert!(
            s.report.deterministic_eq(&p.report),
            "{}: sharded run diverged from serial",
            s.scenario.name
        );
        assert_eq!(s.report.trials, p.report.trials);
    }
}

#[test]
fn resume_runs_only_the_missing_scenarios_and_matches_serial_bytes() {
    let campaign = shard_campaign();

    // Reference: a full serial run.
    let serial_store = temp_store("resume-serial");
    CampaignRunner::new()
        .run_campaign_report(&campaign, Some(&serial_store))
        .unwrap();

    // Crash reconstruction: the first half of the serial store plus a
    // truncated trailing line, exactly what a killed campaign leaves.
    let resumed_store = temp_store("resume-crash");
    let full = std::fs::read_to_string(serial_store.path()).unwrap();
    let half: Vec<&str> = full.lines().take(2).collect();
    std::fs::write(
        resumed_store.path(),
        format!("{}\n{{\"campaign\":\"shards\",\"scena", half.join("\n")),
    )
    .unwrap();

    let runner = CampaignRunner::new()
        .shards(2)
        .resume_from(&resumed_store)
        .unwrap();
    assert_eq!(runner.resumable_runs(), 2);
    let report = runner
        .run_campaign_report(&campaign, Some(&resumed_store))
        .unwrap();

    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.contains("truncated") || w.contains("partial trailing line")),
        "the crash artifact must be surfaced: {:?}",
        report.warnings
    );
    assert_eq!(report.completed, 4);
    // Scenarios 0 and 1 are replayed from the store; the alias (content
    // of scenario 0) is served too; only scenario 2 actually runs.
    let served: Vec<bool> = report
        .runs
        .iter()
        .map(|r| r.result.as_ref().unwrap().from_store)
        .collect();
    assert_eq!(served, [true, true, false, true]);
    assert_eq!(report.store_served, 3);
    let computed: Vec<&str> = report
        .runs
        .iter()
        .filter(|r| {
            let o = r.result.as_ref().unwrap();
            !o.from_store && !o.from_cache
        })
        .map(|r| r.name.as_str())
        .collect();
    assert_eq!(computed, ["pipeline"], "only the missing scenario runs");
    for run in &report.runs {
        let outcome = run.result.as_ref().unwrap();
        if outcome.from_store {
            assert_eq!(outcome.wall_ms, 0.0);
            assert!(
                outcome.compute_wall_ms > 0.0,
                "{}: original compute time must survive the store hit",
                run.name
            );
        }
    }

    // Post-compaction, the resumed store is byte-identical to the serial
    // one — the acceptance bar for resume correctness.
    serial_store.compact().unwrap();
    resumed_store.compact().unwrap();
    assert_eq!(
        std::fs::read(serial_store.path()).unwrap(),
        std::fs::read(resumed_store.path()).unwrap(),
        "resumed store diverged from the serial reference after compaction"
    );
    let _ = std::fs::remove_file(serial_store.path());
    let _ = std::fs::remove_file(resumed_store.path());
}

#[test]
fn the_example_campaign_file_parses_and_clamps() {
    let text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/campaign.json"),
    )
    .unwrap();
    let campaign = Campaign::from_json_str(&text).unwrap();
    assert!(campaign.scenarios.len() >= 3, "acceptance: >= 3 scenarios");
    let fault_families: std::collections::BTreeSet<String> = campaign
        .scenarios
        .iter()
        .flat_map(|s| s.faults.iter().map(|f| f.to_string()))
        .collect();
    assert!(fault_families.len() >= 2, "acceptance: >= 2 fault models");
    for sc in &campaign.scenarios {
        sc.validate().unwrap();
        let quick = sc.clamped_quick();
        assert!(quick.trials <= 3 && quick.mc_samples <= 2);
    }
}

/// A stored record whose `best_objective`/`best_alpha` serialized as JSON
/// `null` (a diverged, NaN-reporting run) must replay under resume instead
/// of recomputing with a warning — `RunReport::from_json` reads `null`
/// back as NaN.
#[test]
fn nan_records_replay_under_resume() {
    let campaign = Campaign::new("nan-replay", vec![tiny("only", &["lognormal:0.4"], 5)]);
    let store = temp_store("nan-resume");
    CampaignRunner::new()
        .run_campaign_report(&campaign, Some(&store))
        .unwrap();

    // Rewrite the stored report as a diverged run: objective and one α
    // coordinate become JSON null (how the serializer encodes NaN).
    let text = std::fs::read_to_string(store.path()).unwrap();
    let mut value: serde_json::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
    let report = value.get_mut("report").unwrap();
    report.insert("best_objective", serde_json::Value::Null);
    report.insert(
        "best_alpha",
        serde_json::Value::Array(vec![serde_json::Value::Null]),
    );
    std::fs::write(store.path(), format!("{}\n", serde_json::to_string(&value))).unwrap();

    let runner = CampaignRunner::new().resume_from(&store).unwrap();
    assert_eq!(
        runner.resumable_runs(),
        1,
        "the NaN record must be replayable"
    );
    let report = runner.run_campaign_report(&campaign, None).unwrap();
    assert!(
        report
            .warnings
            .iter()
            .all(|w| !w.contains("cannot be replayed")),
        "NaN records must not warn-and-recompute: {:?}",
        report.warnings
    );
    let outcome = report.runs[0].result.as_ref().unwrap();
    assert!(outcome.from_store, "served from the store, not recomputed");
    assert!(outcome.report.best_objective.is_nan());
    assert!(outcome.report.best_alpha[0].is_nan());
    let _ = std::fs::remove_file(store.path());
}
