//! Covariance kernels for GP regression.

/// A positive-definite covariance kernel over `R^d`.
pub trait Kernel: Send + Sync {
    /// Covariance between two points.
    ///
    /// Implementations may assume `a.len() == b.len()`.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Prior variance at a point, `k(x, x)`.
    fn diag(&self, x: &[f64]) -> f64 {
        self.eval(x, x)
    }
}

/// The paper's exponential kernel (Eq. 9):
/// `k(α₁, α₂) = k₀ · exp(−Σᵢ kᵢ (α₁ᵢ − α₂ᵢ)²)`
/// — a squared-exponential with per-dimension inverse-lengthscale weights.
///
/// # Example
///
/// ```
/// use bayesopt::{Kernel, SquaredExponential};
///
/// let k = SquaredExponential::isotropic(2.0, 0.5);
/// assert!((k.eval(&[0.1], &[0.1]) - 2.0).abs() < 1e-12);
/// assert!(k.eval(&[0.0], &[1.0]) < 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SquaredExponential {
    k0: f64,
    weights: Vec<f64>,
}

impl SquaredExponential {
    /// Creates the kernel with amplitude `k0` and per-dimension weights
    /// `kᵢ` (inverse squared lengthscales).
    ///
    /// # Panics
    ///
    /// Panics if `k0` is not positive or any weight is negative.
    pub fn new(k0: f64, weights: Vec<f64>) -> Self {
        assert!(k0 > 0.0, "kernel amplitude must be positive");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "kernel weights must be non-negative"
        );
        SquaredExponential { k0, weights }
    }

    /// Creates an isotropic kernel for any dimension with lengthscale `ℓ`
    /// (weight `1/(2ℓ²)` applied to every coordinate).
    ///
    /// # Panics
    ///
    /// Panics if `k0` or `lengthscale` is not positive.
    pub fn isotropic(k0: f64, lengthscale: f64) -> Self {
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        SquaredExponential {
            k0,
            weights: vec![1.0 / (2.0 * lengthscale * lengthscale)],
        }
    }

    fn weight(&self, i: usize) -> f64 {
        if self.weights.len() == 1 {
            self.weights[0]
        } else {
            self.weights[i]
        }
    }
}

impl Kernel for SquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut s = 0.0;
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            let d = x - y;
            s += self.weight(i) * d * d;
        }
        self.k0 * (-s).exp()
    }
}

/// Matérn-5/2 kernel — a rougher prior than the squared exponential, used
/// in the acquisition/kernel ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern52 {
    k0: f64,
    lengthscale: f64,
}

impl Matern52 {
    /// Creates the kernel with amplitude `k0` and lengthscale `ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn new(k0: f64, lengthscale: f64) -> Self {
        assert!(k0 > 0.0, "kernel amplitude must be positive");
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        Matern52 { k0, lengthscale }
    }
}

impl Kernel for Matern52 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let r2: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
        let r = r2.sqrt() / self.lengthscale;
        let s5 = (5.0f64).sqrt();
        self.k0 * (1.0 + s5 * r + 5.0 / 3.0 * r * r) * (-s5 * r).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn se_kernel_is_symmetric_and_peaks_at_zero_distance() {
        let k = SquaredExponential::new(1.5, vec![2.0, 0.5]);
        let a = [0.2, 0.8];
        let b = [0.6, 0.1];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        assert!(k.eval(&a, &b) < k.eval(&a, &a));
        assert!((k.eval(&a, &a) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn se_kernel_matches_formula() {
        let k = SquaredExponential::new(1.0, vec![1.0]);
        // distance 1 → exp(-1)
        assert!((k.eval(&[0.0], &[1.0]) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn isotropic_broadcasts_weight() {
        let k = SquaredExponential::isotropic(1.0, 1.0);
        // weight = 0.5 per dim, two dims each at distance 1 → exp(-1)
        assert!((k.eval(&[0.0, 0.0], &[1.0, 1.0]) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn matern_is_symmetric_decreasing() {
        let k = Matern52::new(1.0, 0.5);
        assert!((k.eval(&[0.3], &[0.3]) - 1.0).abs() < 1e-12);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[0.9]);
        assert!(near > far && far > 0.0);
        assert_eq!(k.eval(&[0.0], &[0.4]), k.eval(&[0.4], &[0.0]));
    }

    #[test]
    #[should_panic(expected = "amplitude must be positive")]
    fn zero_amplitude_panics() {
        let _ = SquaredExponential::new(0.0, vec![1.0]);
    }
}
