//! Gaussian-process Bayesian optimization for the BayesFT reproduction.
//!
//! Implements the surrogate-model machinery of the paper's §III-B:
//! a Gaussian-process regressor (Eqs. 5–8) with the exponential kernel of
//! Eq. (9), and the trial-selection rule `α_{t} = argmax p(g(α) | g(α_{1:t−1}))`
//! realized by maximizing an acquisition function over sampled candidates.
//!
//! The paper's own acquisition is the posterior mean
//! ([`Acquisition::PosteriorMean`]); expected improvement and UCB are
//! provided for the acquisition ablation bench.
//!
//! All GP numerics run in `f64` (Cholesky factorization with adaptive
//! jitter) regardless of the `f32` tensors used by the network substrate —
//! kernel matrices are tiny (one row per BO trial) but ill-conditioned.
//!
//! # Example
//!
//! ```
//! use bayesopt::{Acquisition, BayesOpt, SquaredExponential};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! // Maximize f(x) = -(x-0.3)² on [0, 1].
//! let mut bo = BayesOpt::new(1, SquaredExponential::isotropic(1.0, 0.2))
//!     .acquisition(Acquisition::ExpectedImprovement { xi: 0.01 });
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! for _ in 0..15 {
//!     let x = bo.suggest(&mut rng)?;
//!     let y = -(x[0] - 0.3f64).powi(2);
//!     bo.tell(x, y);
//! }
//! let (best_x, _) = bo.best_observed().expect("observations were told");
//! assert!((best_x[0] - 0.3).abs() < 0.15);
//! # Ok::<(), bayesopt::GpError>(())
//! ```

mod acquisition;
mod chol;
mod gp;
mod kernel;
mod opt;
mod sampler;

pub use acquisition::Acquisition;
pub use chol::{cholesky, cholesky_solve, Cholesky};
pub use gp::{GaussianProcess, GpError, Posterior};
pub use kernel::{Kernel, Matern52, SquaredExponential};
pub use opt::{nan_low_cmp, BayesOpt, Observation};
pub use sampler::{latin_hypercube, uniform_candidates};
