//! Acquisition functions for selecting the next trial point.

use crate::Posterior;

/// Rule for scoring candidate points given the GP posterior (maximization
/// convention: higher score = more attractive trial).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Acquisition {
    /// The paper's rule (§III-B, Algorithm 1 line 9): pick the candidate
    /// with the highest posterior mean.
    PosteriorMean,
    /// Expected improvement over the incumbent, with exploration margin
    /// `xi`.
    ExpectedImprovement {
        /// Exploration margin added to the incumbent.
        xi: f64,
    },
    /// Upper confidence bound `µ + κσ`.
    UpperConfidenceBound {
        /// Exploration weight on the posterior standard deviation.
        kappa: f64,
    },
}

impl Default for Acquisition {
    /// The paper's posterior-mean rule.
    fn default() -> Self {
        Acquisition::PosteriorMean
    }
}

impl Acquisition {
    /// Scores a candidate with posterior `p`, given the best observed
    /// objective value `best` so far.
    pub fn score(&self, p: &Posterior, best: f64) -> f64 {
        match *self {
            Acquisition::PosteriorMean => p.mean,
            Acquisition::ExpectedImprovement { xi } => expected_improvement(p, best + xi),
            Acquisition::UpperConfidenceBound { kappa } => p.mean + kappa * p.std(),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Acquisition::PosteriorMean => "posterior_mean",
            Acquisition::ExpectedImprovement { .. } => "expected_improvement",
            Acquisition::UpperConfidenceBound { .. } => "ucb",
        }
    }
}

impl std::fmt::Display for Acquisition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// EI for maximization: `E[max(f − f*, 0)]` under `f ~ N(µ, σ²)`.
fn expected_improvement(p: &Posterior, incumbent: f64) -> f64 {
    let sigma = p.std();
    if sigma < 1e-12 {
        return (p.mean - incumbent).max(0.0);
    }
    let z = (p.mean - incumbent) / sigma;
    (p.mean - incumbent) * normal_cdf(z) + sigma * normal_pdf(z)
}

fn normal_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Φ(z) via the Abramowitz–Stegun erf approximation (|error| < 1.5e-7).
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn posterior_mean_ignores_variance() {
        let a = Acquisition::PosteriorMean;
        let p1 = Posterior {
            mean: 1.0,
            variance: 0.01,
        };
        let p2 = Posterior {
            mean: 1.0,
            variance: 100.0,
        };
        assert_eq!(a.score(&p1, 0.0), a.score(&p2, 0.0));
    }

    #[test]
    fn ei_is_zero_for_certainly_worse_point() {
        let a = Acquisition::ExpectedImprovement { xi: 0.0 };
        let p = Posterior {
            mean: -1.0,
            variance: 0.0,
        };
        assert_eq!(a.score(&p, 0.0), 0.0);
    }

    #[test]
    fn ei_grows_with_uncertainty() {
        let a = Acquisition::ExpectedImprovement { xi: 0.0 };
        let tight = Posterior {
            mean: 0.0,
            variance: 0.01,
        };
        let loose = Posterior {
            mean: 0.0,
            variance: 1.0,
        };
        assert!(a.score(&loose, 0.5) > a.score(&tight, 0.5));
    }

    #[test]
    fn ei_at_zero_sigma_is_relu_of_gap() {
        let a = Acquisition::ExpectedImprovement { xi: 0.0 };
        let p = Posterior {
            mean: 2.0,
            variance: 0.0,
        };
        assert_eq!(a.score(&p, 0.5), 1.5);
    }

    #[test]
    fn ucb_trades_off_mean_and_std() {
        let a = Acquisition::UpperConfidenceBound { kappa: 2.0 };
        let p = Posterior {
            mean: 1.0,
            variance: 4.0,
        };
        assert!((a.score(&p, 0.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Acquisition::PosteriorMean.to_string(), "posterior_mean");
        assert_eq!(
            Acquisition::UpperConfidenceBound { kappa: 1.0 }.name(),
            "ucb"
        );
    }
}
