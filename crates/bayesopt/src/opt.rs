//! The Bayesian-optimization driver: tell observations, suggest the next
//! trial (Algorithm 1 lines 8–9).

use std::cmp::Ordering;

use rand::Rng;

use crate::{latin_hypercube, uniform_candidates, Acquisition, GaussianProcess, GpError, Kernel};

/// Total order over objective values that deterministically ranks NaN below
/// every other value (including `-∞`), and is otherwise
/// [`f64::total_cmp`].
///
/// This is the comparator every best-candidate selection in the workspace
/// uses: a NaN objective (a diverged trial, a poisoned Monte-Carlo mean)
/// can never panic a `sort`, win an argmax, or tie arbitrarily with a
/// finite incumbent.
///
/// # Example
///
/// ```
/// use bayesopt::nan_low_cmp;
///
/// let mut ys = vec![0.3, f64::NAN, f64::NEG_INFINITY, 0.7];
/// ys.sort_by(|a, b| nan_low_cmp(*a, *b));
/// assert!(ys[0].is_nan());
/// assert_eq!(ys[1..], [f64::NEG_INFINITY, 0.3, 0.7]);
/// ```
pub fn nan_low_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// One completed trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Trial coordinates in `[0, 1]^d`.
    pub x: Vec<f64>,
    /// Observed objective value (maximization convention).
    pub y: f64,
}

/// Sequential Bayesian optimizer over the unit hypercube.
///
/// The paper's usage: dimensions are per-layer dropout rates `α ∈ [0,1]^{K−1}`,
/// the objective is the Monte-Carlo drift-marginalized negative loss
/// (Eq. 4), the surrogate is a GP with the exponential kernel (Eq. 9), and
/// the next trial maximizes the posterior (Algorithm 1 line 9).
///
/// `suggest` scores a fresh batch of candidate points (Latin hypercube for
/// the first call, uniform afterwards, always including a local
/// perturbation of the incumbent) under the acquisition function.
///
/// See the crate-level example for end-to-end usage.
pub struct BayesOpt<K: Kernel + Clone> {
    dim: usize,
    kernel: K,
    acquisition: Acquisition,
    noise: f64,
    candidates_per_suggest: usize,
    observations: Vec<Observation>,
}

impl<K: Kernel + Clone> BayesOpt<K> {
    /// Creates an optimizer over `[0, 1]^dim` with the given kernel.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, kernel: K) -> Self {
        assert!(dim > 0, "search space must have at least one dimension");
        BayesOpt {
            dim,
            kernel,
            acquisition: Acquisition::default(),
            noise: 1e-6,
            candidates_per_suggest: 256,
            observations: Vec::new(),
        }
    }

    /// Sets the acquisition function (default: the paper's posterior mean).
    pub fn acquisition(mut self, acq: Acquisition) -> Self {
        self.acquisition = acq;
        self
    }

    /// Sets the GP observation-noise variance.
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets how many candidates each `suggest` call scores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn candidates(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one candidate");
        self.candidates_per_suggest = n;
        self
    }

    /// Records a completed trial.
    ///
    /// Non-finite objective values (a diverged trial reporting NaN or
    /// `-∞`) are accepted and recorded, but they are excluded from the GP
    /// surrogate fit and rank below every finite observation in
    /// [`BayesOpt::best_observed`] — a NaN trial can never become the
    /// incumbent while a finite one exists.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn tell(&mut self, x: Vec<f64>, y: f64) {
        assert_eq!(x.len(), self.dim, "observation dimension mismatch");
        self.observations.push(Observation { x, y });
    }

    /// Suggests the next trial point.
    ///
    /// With no observations this returns a random point; with fewer than two
    /// it space-fills via Latin hypercube; afterwards it fits the GP and
    /// maximizes the acquisition over sampled candidates. Non-finite
    /// observations are excluded from the surrogate (they would poison
    /// every posterior), so a history of NaN trials keeps space-filling
    /// until two finite observations exist.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::SingularKernel`] if the surrogate cannot be
    /// fitted even with jitter (duplicate-heavy degenerate histories).
    pub fn suggest(&self, rng: &mut impl Rng) -> Result<Vec<f64>, GpError> {
        let finite: Vec<&Observation> = self
            .observations
            .iter()
            .filter(|o| o.y.is_finite())
            .collect();
        if finite.len() < 2 {
            let mut lhs = latin_hypercube(2, self.dim, rng);
            return Ok(lhs.swap_remove(finite.len() % 2));
        }
        let mut gp = GaussianProcess::new(self.kernel.clone(), self.noise);
        {
            let _s = telemetry::Span::enter(
                "bayesopt.gp_fit",
                telemetry::duration_histogram!("bayesopt_gp_fit_seconds"),
            );
            gp.fit(
                finite.iter().map(|o| o.x.clone()).collect(),
                finite.iter().map(|o| o.y).collect(),
            )?;
        }
        let best = self
            .best_observed()
            .map(|(_, y)| y)
            .filter(|y| y.is_finite())
            .unwrap_or(f64::NEG_INFINITY);

        let mut candidates = uniform_candidates(self.candidates_per_suggest, self.dim, rng);
        // Local refinement candidates around the incumbent (NaN incumbents
        // rank below every finite observation, so `bx` is finite-backed
        // whenever any finite trial exists).
        if let Some((bx, _)) = self.best_observed() {
            for scale in [0.05, 0.15] {
                let mut c = bx.clone();
                for v in &mut c {
                    *v = (*v + scale * (rng.gen::<f64>() * 2.0 - 1.0)).clamp(0.0, 1.0);
                }
                candidates.push(c);
            }
        }

        let _s = telemetry::Span::enter(
            "bayesopt.acquisition",
            telemetry::duration_histogram!("bayesopt_acquisition_seconds"),
        );
        let mut best_score = f64::NEG_INFINITY;
        let mut best_point = candidates[0].clone();
        for c in candidates {
            let p = gp.posterior(&c)?;
            let s = self.acquisition.score(&p, best);
            if s > best_score {
                best_score = s;
                best_point = c;
            }
        }
        Ok(best_point)
    }

    /// The best observation so far, if any, ranked with [`nan_low_cmp`]:
    /// NaN and `-∞` objectives sort below every finite value, so the
    /// incumbent is finite whenever any finite observation exists (ties
    /// keep the latest observation, matching the historical `max_by`
    /// behavior).
    pub fn best_observed(&self) -> Option<(Vec<f64>, f64)> {
        self.observations
            .iter()
            .max_by(|a, b| nan_low_cmp(a.y, b.y))
            .map(|o| (o.x.clone(), o.y))
    }

    /// All recorded observations, in insertion order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Search-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl<K: Kernel + Clone + std::fmt::Debug> std::fmt::Debug for BayesOpt<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesOpt")
            .field("dim", &self.dim)
            .field("acquisition", &self.acquisition)
            .field("observations", &self.observations.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SquaredExponential;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_bo(acq: Acquisition, trials: usize, target: &[f64]) -> f64 {
        let dim = target.len();
        let mut bo = BayesOpt::new(dim, SquaredExponential::isotropic(1.0, 0.25))
            .acquisition(acq)
            .candidates(128);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..trials {
            let x = bo.suggest(&mut rng).unwrap();
            let y = -x
                .iter()
                .zip(target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            bo.tell(x, y);
        }
        bo.best_observed().unwrap().1
    }

    #[test]
    fn finds_1d_optimum() {
        let best = run_bo(Acquisition::ExpectedImprovement { xi: 0.01 }, 20, &[0.7]);
        assert!(best > -0.01, "best objective {best}");
    }

    #[test]
    fn posterior_mean_rule_also_converges() {
        // The paper's own acquisition: posterior-mean maximization.
        let best = run_bo(Acquisition::PosteriorMean, 25, &[0.4]);
        assert!(best > -0.02, "best objective {best}");
    }

    #[test]
    fn works_in_higher_dimensions() {
        let best = run_bo(
            Acquisition::UpperConfidenceBound { kappa: 1.5 },
            30,
            &[0.3, 0.6, 0.9],
        );
        assert!(best > -0.1, "best objective {best}");
    }

    #[test]
    fn bo_beats_pure_random_search_on_budget() {
        let target = [0.25, 0.75];
        let objective = |x: &[f64]| {
            -x.iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        let bo_best = run_bo(Acquisition::ExpectedImprovement { xi: 0.01 }, 25, &target);
        // Random search with the same budget, averaged over seeds.
        let mut rand_best_sum = 0.0;
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let best = (0..25)
                .map(|_| {
                    let x: Vec<f64> = (0..2).map(|_| rng.gen::<f64>()).collect();
                    objective(&x)
                })
                // lint:allow(R2, reason = "test objective is a finite polynomial; maxNum fold is fine")
                .fold(f64::NEG_INFINITY, f64::max);
            rand_best_sum += best;
        }
        assert!(
            bo_best >= rand_best_sum / 5.0 - 1e-3,
            "BO {bo_best} vs random avg {}",
            rand_best_sum / 5.0
        );
    }

    #[test]
    fn suggestions_stay_in_unit_cube() {
        let mut bo = BayesOpt::new(4, SquaredExponential::isotropic(1.0, 0.3));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for i in 0..10 {
            let x = bo.suggest(&mut rng).unwrap();
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)), "trial {i}");
            bo.tell(x, (i as f64).sin());
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn tell_rejects_wrong_dimension() {
        let mut bo = BayesOpt::new(2, SquaredExponential::isotropic(1.0, 0.3));
        bo.tell(vec![0.5], 1.0);
    }

    #[test]
    fn nan_observation_never_beats_a_finite_incumbent() {
        // Regression: the old partial_cmp(..).unwrap_or(Equal) ranking let
        // a NaN observation win or tie arbitrarily depending on insertion
        // order. NaN must lose to every finite value, wherever it lands.
        for nan_at in 0..3 {
            let mut bo = BayesOpt::new(1, SquaredExponential::isotropic(1.0, 0.3));
            let mut ys = vec![0.2, 0.9];
            ys.insert(nan_at, f64::NAN);
            for (i, y) in ys.into_iter().enumerate() {
                bo.tell(vec![0.1 * (i + 1) as f64], y);
            }
            let (x, y) = bo.best_observed().unwrap();
            assert_eq!(y, 0.9, "NaN at index {nan_at} displaced the incumbent");
            assert!(!x[0].is_nan());
        }
    }

    #[test]
    fn neg_infinity_ranks_below_finite_but_above_nan() {
        let mut bo = BayesOpt::new(1, SquaredExponential::isotropic(1.0, 0.3));
        bo.tell(vec![0.1], f64::NEG_INFINITY);
        bo.tell(vec![0.2], f64::NAN);
        bo.tell(vec![0.3], -1e300);
        let (x, y) = bo.best_observed().unwrap();
        assert_eq!(y, -1e300);
        assert_eq!(x, vec![0.3]);
        // All-NaN history: a deterministic NaN incumbent, no panic.
        let mut all_nan = BayesOpt::new(1, SquaredExponential::isotropic(1.0, 0.3));
        all_nan.tell(vec![0.4], f64::NAN);
        all_nan.tell(vec![0.6], f64::NAN);
        assert!(all_nan.best_observed().unwrap().1.is_nan());
    }

    #[test]
    fn suggest_survives_nan_history_and_stays_in_cube() {
        // NaN observations are excluded from the GP fit; suggestions keep
        // flowing and stay inside the unit cube.
        let mut bo = BayesOpt::new(2, SquaredExponential::isotropic(1.0, 0.3));
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for i in 0..8 {
            let x = bo.suggest(&mut rng).unwrap();
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)), "trial {i}");
            let y = if i % 2 == 0 { f64::NAN } else { i as f64 };
            bo.tell(x, y);
        }
        assert_eq!(bo.observations().len(), 8);
        assert_eq!(bo.best_observed().unwrap().1, 7.0);
    }

    #[test]
    fn nan_low_cmp_is_a_total_order_with_nan_at_the_bottom() {
        use std::cmp::Ordering;
        let vals = [
            f64::NAN,
            f64::NEG_INFINITY,
            -1.0,
            -0.0,
            0.0,
            1.0,
            f64::INFINITY,
        ];
        // Strictly non-decreasing as listed; NaN equal to itself.
        for w in vals.windows(2) {
            assert_ne!(nan_low_cmp(w[0], w[1]), Ordering::Greater, "{w:?}");
            assert_ne!(nan_low_cmp(w[1], w[0]), Ordering::Less, "{w:?}");
        }
        assert_eq!(nan_low_cmp(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_low_cmp(f64::NAN, f64::NEG_INFINITY), Ordering::Less);
    }

    #[test]
    fn best_observed_tracks_maximum() {
        let mut bo = BayesOpt::new(1, SquaredExponential::isotropic(1.0, 0.3));
        bo.tell(vec![0.1], 1.0);
        bo.tell(vec![0.9], 3.0);
        bo.tell(vec![0.5], 2.0);
        let (x, y) = bo.best_observed().unwrap();
        assert_eq!(y, 3.0);
        assert_eq!(x, vec![0.9]);
    }
}
