//! The Bayesian-optimization driver: tell observations, suggest the next
//! trial (Algorithm 1 lines 8–9).

use rand::Rng;

use crate::{latin_hypercube, uniform_candidates, Acquisition, GaussianProcess, GpError, Kernel};

/// One completed trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Trial coordinates in `[0, 1]^d`.
    pub x: Vec<f64>,
    /// Observed objective value (maximization convention).
    pub y: f64,
}

/// Sequential Bayesian optimizer over the unit hypercube.
///
/// The paper's usage: dimensions are per-layer dropout rates `α ∈ [0,1]^{K−1}`,
/// the objective is the Monte-Carlo drift-marginalized negative loss
/// (Eq. 4), the surrogate is a GP with the exponential kernel (Eq. 9), and
/// the next trial maximizes the posterior (Algorithm 1 line 9).
///
/// `suggest` scores a fresh batch of candidate points (Latin hypercube for
/// the first call, uniform afterwards, always including a local
/// perturbation of the incumbent) under the acquisition function.
///
/// See the crate-level example for end-to-end usage.
pub struct BayesOpt<K: Kernel + Clone> {
    dim: usize,
    kernel: K,
    acquisition: Acquisition,
    noise: f64,
    candidates_per_suggest: usize,
    observations: Vec<Observation>,
}

impl<K: Kernel + Clone> BayesOpt<K> {
    /// Creates an optimizer over `[0, 1]^dim` with the given kernel.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, kernel: K) -> Self {
        assert!(dim > 0, "search space must have at least one dimension");
        BayesOpt {
            dim,
            kernel,
            acquisition: Acquisition::default(),
            noise: 1e-6,
            candidates_per_suggest: 256,
            observations: Vec::new(),
        }
    }

    /// Sets the acquisition function (default: the paper's posterior mean).
    pub fn acquisition(mut self, acq: Acquisition) -> Self {
        self.acquisition = acq;
        self
    }

    /// Sets the GP observation-noise variance.
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets how many candidates each `suggest` call scores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn candidates(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one candidate");
        self.candidates_per_suggest = n;
        self
    }

    /// Records a completed trial.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension or `y` is not finite.
    pub fn tell(&mut self, x: Vec<f64>, y: f64) {
        assert_eq!(x.len(), self.dim, "observation dimension mismatch");
        assert!(y.is_finite(), "objective value must be finite");
        self.observations.push(Observation { x, y });
    }

    /// Suggests the next trial point.
    ///
    /// With no observations this returns a random point; with fewer than two
    /// it space-fills via Latin hypercube; afterwards it fits the GP and
    /// maximizes the acquisition over sampled candidates.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::SingularKernel`] if the surrogate cannot be
    /// fitted even with jitter (duplicate-heavy degenerate histories).
    pub fn suggest(&self, rng: &mut impl Rng) -> Result<Vec<f64>, GpError> {
        if self.observations.len() < 2 {
            let mut lhs = latin_hypercube(2, self.dim, rng);
            return Ok(lhs.swap_remove(self.observations.len() % 2));
        }
        let mut gp = GaussianProcess::new(self.kernel.clone(), self.noise);
        gp.fit(
            self.observations.iter().map(|o| o.x.clone()).collect(),
            self.observations.iter().map(|o| o.y).collect(),
        )?;
        let best = self
            .best_observed()
            .map(|(_, y)| y)
            .unwrap_or(f64::NEG_INFINITY);

        let mut candidates = uniform_candidates(self.candidates_per_suggest, self.dim, rng);
        // Local refinement candidates around the incumbent.
        if let Some((bx, _)) = self.best_observed() {
            for scale in [0.05, 0.15] {
                let mut c = bx.clone();
                for v in &mut c {
                    *v = (*v + scale * (rng.gen::<f64>() * 2.0 - 1.0)).clamp(0.0, 1.0);
                }
                candidates.push(c);
            }
        }

        let mut best_score = f64::NEG_INFINITY;
        let mut best_point = candidates[0].clone();
        for c in candidates {
            let p = gp.posterior(&c)?;
            let s = self.acquisition.score(&p, best);
            if s > best_score {
                best_score = s;
                best_point = c;
            }
        }
        Ok(best_point)
    }

    /// The best observation so far, if any.
    pub fn best_observed(&self) -> Option<(Vec<f64>, f64)> {
        self.observations
            .iter()
            .max_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
            .map(|o| (o.x.clone(), o.y))
    }

    /// All recorded observations, in insertion order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Search-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl<K: Kernel + Clone + std::fmt::Debug> std::fmt::Debug for BayesOpt<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesOpt")
            .field("dim", &self.dim)
            .field("acquisition", &self.acquisition)
            .field("observations", &self.observations.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SquaredExponential;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_bo(acq: Acquisition, trials: usize, target: &[f64]) -> f64 {
        let dim = target.len();
        let mut bo = BayesOpt::new(dim, SquaredExponential::isotropic(1.0, 0.25))
            .acquisition(acq)
            .candidates(128);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..trials {
            let x = bo.suggest(&mut rng).unwrap();
            let y = -x
                .iter()
                .zip(target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            bo.tell(x, y);
        }
        bo.best_observed().unwrap().1
    }

    #[test]
    fn finds_1d_optimum() {
        let best = run_bo(Acquisition::ExpectedImprovement { xi: 0.01 }, 20, &[0.7]);
        assert!(best > -0.01, "best objective {best}");
    }

    #[test]
    fn posterior_mean_rule_also_converges() {
        // The paper's own acquisition: posterior-mean maximization.
        let best = run_bo(Acquisition::PosteriorMean, 25, &[0.4]);
        assert!(best > -0.02, "best objective {best}");
    }

    #[test]
    fn works_in_higher_dimensions() {
        let best = run_bo(
            Acquisition::UpperConfidenceBound { kappa: 1.5 },
            30,
            &[0.3, 0.6, 0.9],
        );
        assert!(best > -0.1, "best objective {best}");
    }

    #[test]
    fn bo_beats_pure_random_search_on_budget() {
        let target = [0.25, 0.75];
        let objective = |x: &[f64]| {
            -x.iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        let bo_best = run_bo(Acquisition::ExpectedImprovement { xi: 0.01 }, 25, &target);
        // Random search with the same budget, averaged over seeds.
        let mut rand_best_sum = 0.0;
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let best = (0..25)
                .map(|_| {
                    let x: Vec<f64> = (0..2).map(|_| rng.gen::<f64>()).collect();
                    objective(&x)
                })
                .fold(f64::NEG_INFINITY, f64::max);
            rand_best_sum += best;
        }
        assert!(
            bo_best >= rand_best_sum / 5.0 - 1e-3,
            "BO {bo_best} vs random avg {}",
            rand_best_sum / 5.0
        );
    }

    #[test]
    fn suggestions_stay_in_unit_cube() {
        let mut bo = BayesOpt::new(4, SquaredExponential::isotropic(1.0, 0.3));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for i in 0..10 {
            let x = bo.suggest(&mut rng).unwrap();
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)), "trial {i}");
            bo.tell(x, (i as f64).sin());
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn tell_rejects_wrong_dimension() {
        let mut bo = BayesOpt::new(2, SquaredExponential::isotropic(1.0, 0.3));
        bo.tell(vec![0.5], 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn tell_rejects_nan() {
        let mut bo = BayesOpt::new(1, SquaredExponential::isotropic(1.0, 0.3));
        bo.tell(vec![0.5], f64::NAN);
    }

    #[test]
    fn best_observed_tracks_maximum() {
        let mut bo = BayesOpt::new(1, SquaredExponential::isotropic(1.0, 0.3));
        bo.tell(vec![0.1], 1.0);
        bo.tell(vec![0.9], 3.0);
        bo.tell(vec![0.5], 2.0);
        let (x, y) = bo.best_observed().unwrap();
        assert_eq!(y, 3.0);
        assert_eq!(x, vec![0.9]);
    }
}
