//! Candidate samplers over the unit hypercube `[0, 1]^d`.

use rand::Rng;

/// `n` points drawn uniformly from `[0, 1]^d`.
///
/// # Example
///
/// ```
/// use bayesopt::uniform_candidates;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let pts = uniform_candidates(10, 3, &mut rng);
/// assert_eq!(pts.len(), 10);
/// assert!(pts.iter().flatten().all(|&v| (0.0..1.0).contains(&v)));
/// ```
pub fn uniform_candidates(n: usize, d: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

/// `n` Latin-hypercube samples in `[0, 1]^d`: each dimension is stratified
/// into `n` equal bins, each bin used exactly once, with independent
/// per-dimension permutations.
pub fn latin_hypercube(n: usize, d: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    if n == 0 {
        return Vec::new();
    }
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        columns.push(
            perm.into_iter()
                .map(|bin| (bin as f64 + rng.gen::<f64>()) / n as f64)
                .collect(),
        );
    }
    (0..n)
        .map(|i| columns.iter().map(|col| col[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_fills_requested_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let pts = uniform_candidates(32, 5, &mut rng);
        assert_eq!(pts.len(), 32);
        assert!(pts.iter().all(|p| p.len() == 5));
    }

    #[test]
    fn latin_hypercube_stratifies_each_dimension() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 16;
        let pts = latin_hypercube(n, 3, &mut rng);
        for dim in 0..3 {
            let mut bins = vec![false; n];
            for p in &pts {
                let b = ((p[dim] * n as f64) as usize).min(n - 1);
                assert!(!bins[b], "bin {b} of dim {dim} used twice");
                bins[b] = true;
            }
            assert!(bins.iter().all(|&b| b), "all bins covered in dim {dim}");
        }
    }

    #[test]
    fn latin_hypercube_handles_degenerate_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(latin_hypercube(0, 3, &mut rng).is_empty());
        let one = latin_hypercube(1, 2, &mut rng);
        assert_eq!(one.len(), 1);
        assert!(one[0].iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}
