//! Dense `f64` Cholesky factorization for the small, ill-conditioned kernel
//! matrices of GP regression.

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Vec<f64>,
    n: usize,
}

impl Cholesky {
    /// The matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `L[i][j]` (zero above the diagonal).
    pub fn at(&self, i: usize, j: usize) -> f64 {
        if j > i {
            0.0
        } else {
            self.l[i * self.n + j]
        }
    }

    /// Solves `A·x = b` via forward + backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    // Triangular indexing: numeric loops mirror the textbook algorithm.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        // Forward: L·y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[i * n + j] * y[j];
            }
            y[i] = acc / self.l[i * n + i];
        }
        // Backward: Lᵀ·x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[j * n + i] * x[j];
            }
            x[i] = acc / self.l[i * n + i];
        }
        x
    }

    /// Solves only the forward system `L·y = b` (used for posterior
    /// variance: `σ² = k** − ‖L⁻¹k*‖²`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    #[allow(clippy::needless_range_loop)]
    pub fn forward_solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[i * n + j] * y[j];
            }
            y[i] = acc / self.l[i * n + i];
        }
        y
    }

    /// Log-determinant of `A`: `2·Σ log L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Factorizes a symmetric positive-definite matrix given row-major.
///
/// Returns `None` if the matrix is not positive definite (a non-positive
/// pivot is encountered); callers typically retry with added jitter.
///
/// # Panics
///
/// Panics if `a.len() != n·n`.
///
/// # Example
///
/// ```
/// use bayesopt::cholesky;
///
/// let a = [4.0, 2.0, 2.0, 3.0];
/// let chol = cholesky(&a, 2).expect("SPD");
/// assert!((chol.at(0, 0) - 2.0).abs() < 1e-12);
/// ```
pub fn cholesky(a: &[f64], n: usize) -> Option<Cholesky> {
    assert_eq!(a.len(), n * n, "matrix must be n·n");
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut acc = a[i * n + j];
            for k in 0..j {
                acc -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if acc <= 0.0 || !acc.is_finite() {
                    return None;
                }
                l[i * n + j] = acc.sqrt();
            } else {
                l[i * n + j] = acc / l[j * n + j];
            }
        }
    }
    Some(Cholesky { l, n })
}

/// Solves `A·x = b` for SPD `A`, adding exponentially growing diagonal
/// jitter until the factorization succeeds.
///
/// Returns `None` only if the matrix stays indefinite after 8 jitter
/// escalations (pathological input).
pub fn cholesky_solve(a: &[f64], n: usize, b: &[f64]) -> Option<Vec<f64>> {
    let mut jitter = 0.0;
    for attempt in 0..8 {
        let mut aj = a.to_vec();
        if jitter > 0.0 {
            for i in 0..n {
                aj[i * n + i] += jitter;
            }
        }
        if let Some(chol) = cholesky(&aj, n) {
            return Some(chol.solve(b));
        }
        jitter = if attempt == 0 { 1e-10 } else { jitter * 100.0 };
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_matrix() {
        // A = [[4, 12, -16], [12, 37, -43], [-16, -43, 98]]
        // L = [[2, 0, 0], [6, 1, 0], [-8, 5, 3]]
        let a = [4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0];
        let c = cholesky(&a, 3).expect("SPD");
        let expected = [2.0, 0.0, 0.0, 6.0, 1.0, 0.0, -8.0, 5.0, 3.0];
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.at(i, j) - expected[i * 3 + j]).abs() < 1e-10);
            }
        }
        assert!((c.log_det() - (36.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = [4.0, 2.0, 2.0, 3.0];
        let c = cholesky(&a, 2).unwrap();
        // x = [1, 2] → b = A·x = [8, 8]
        let x = c.solve(&[8.0, 8.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn forward_solve_norm_gives_quadratic_form() {
        // ‖L⁻¹b‖² = bᵀA⁻¹b
        let a = [4.0, 2.0, 2.0, 3.0];
        let c = cholesky(&a, 2).unwrap();
        let b = [1.0, -1.0];
        let y = c.forward_solve(&b);
        let quad: f64 = y.iter().map(|v| v * v).sum();
        let x = c.solve(&b);
        let direct: f64 = b.iter().zip(&x).map(|(bi, xi)| bi * xi).sum();
        assert!((quad - direct).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_returns_none() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn jittered_solve_handles_singular() {
        // Rank-1 matrix: plain Cholesky fails, jitter rescues.
        let a = [1.0, 1.0, 1.0, 1.0];
        let x = cholesky_solve(&a, 2, &[2.0, 2.0]).expect("jitter rescues");
        // Solution of (A + εI)x = b is ≈ [1, 1].
        assert!((x[0] - 1.0).abs() < 0.1 && (x[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let x = cholesky_solve(&a, 2, &[3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }
}
