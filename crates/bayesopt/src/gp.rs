//! Gaussian-process regression (the paper's Eqs. 5–8).

use std::fmt;

use crate::{cholesky, Cholesky, Kernel};

/// Error from GP fitting or prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpError {
    /// `fit` was given no observations.
    NoObservations,
    /// Observation coordinates have inconsistent dimensions.
    DimensionMismatch,
    /// The kernel matrix stayed indefinite even after jitter escalation.
    SingularKernel,
    /// Prediction was requested before any successful fit.
    NotFitted,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::NoObservations => write!(f, "gaussian process needs at least one observation"),
            GpError::DimensionMismatch => {
                write!(f, "observation coordinates have inconsistent dimensions")
            }
            GpError::SingularKernel => {
                write!(f, "kernel matrix is not positive definite even with jitter")
            }
            GpError::NotFitted => write!(f, "gaussian process has not been fitted"),
        }
    }
}

impl std::error::Error for GpError {}

/// Posterior mean and variance at a query point (Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Posterior mean `µₙ(α)`.
    pub mean: f64,
    /// Posterior variance `σₙ²(α)` (clamped to be non-negative).
    pub variance: f64,
}

impl Posterior {
    /// Posterior standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// A Gaussian-process regressor with a fixed kernel and observation noise.
///
/// # Example
///
/// ```
/// use bayesopt::{GaussianProcess, SquaredExponential};
///
/// let kernel = SquaredExponential::isotropic(1.0, 0.3);
/// let mut gp = GaussianProcess::new(kernel, 1e-6);
/// gp.fit(
///     vec![vec![0.0], vec![1.0]],
///     vec![0.0, 1.0],
/// )?;
/// let p = gp.posterior(&[0.0])?;
/// assert!(p.mean.abs() < 1e-3);        // interpolates
/// assert!(p.variance < 1e-3);          // confident at data
/// let far = gp.posterior(&[10.0])?;
/// assert!(far.variance > 0.9);         // uncertain far away
/// # Ok::<(), bayesopt::GpError>(())
/// ```
pub struct GaussianProcess<K: Kernel> {
    kernel: K,
    noise: f64,
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Option<Cholesky>,
    y_mean: f64,
}

impl<K: Kernel> GaussianProcess<K> {
    /// Creates an unfitted GP with the given kernel and observation-noise
    /// variance (also the base jitter).
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative.
    pub fn new(kernel: K, noise: f64) -> Self {
        assert!(noise >= 0.0, "noise variance must be non-negative");
        GaussianProcess {
            kernel,
            noise,
            x: Vec::new(),
            alpha: Vec::new(),
            chol: None,
            y_mean: 0.0,
        }
    }

    /// Fits the GP to observations `(x, y)`. Targets are internally
    /// centered; predictions add the mean back.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::NoObservations`] for empty input,
    /// [`GpError::DimensionMismatch`] for ragged coordinates or
    /// `x.len() != y.len()`, and [`GpError::SingularKernel`] if the kernel
    /// matrix cannot be factorized even with jitter escalation.
    pub fn fit(&mut self, x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<(), GpError> {
        if x.is_empty() || y.is_empty() {
            return Err(GpError::NoObservations);
        }
        if x.len() != y.len() {
            return Err(GpError::DimensionMismatch);
        }
        let d = x[0].len();
        if x.iter().any(|p| p.len() != d) {
            return Err(GpError::DimensionMismatch);
        }
        let n = x.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = self.kernel.eval(&x[i], &x[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }
        let mut jitter = self.noise.max(1e-12);
        let mut chol = None;
        for _ in 0..10 {
            let mut kj = k.clone();
            for i in 0..n {
                kj[i * n + i] += jitter;
            }
            if let Some(c) = cholesky(&kj, n) {
                chol = Some(c);
                break;
            }
            jitter *= 10.0;
        }
        let chol = chol.ok_or(GpError::SingularKernel)?;
        self.alpha = chol.solve(&yc);
        self.chol = Some(chol);
        self.x = x;
        self.y_mean = y_mean;
        Ok(())
    }

    /// Posterior mean and variance at `query` (Eq. 8).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::NotFitted`] before the first successful fit, or
    /// [`GpError::DimensionMismatch`] if `query` has the wrong dimension.
    pub fn posterior(&self, query: &[f64]) -> Result<Posterior, GpError> {
        let chol = self.chol.as_ref().ok_or(GpError::NotFitted)?;
        if self.x[0].len() != query.len() {
            return Err(GpError::DimensionMismatch);
        }
        let kstar: Vec<f64> = self
            .x
            .iter()
            .map(|xi| self.kernel.eval(xi, query))
            .collect();
        let mean: f64 = kstar
            .iter()
            .zip(&self.alpha)
            .map(|(k, a)| k * a)
            .sum::<f64>()
            + self.y_mean;
        let v = chol.forward_solve(&kstar);
        let variance = (self.kernel.diag(query) - v.iter().map(|vi| vi * vi).sum::<f64>()).max(0.0);
        Ok(Posterior { mean, variance })
    }

    /// Number of fitted observations (0 before fitting).
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the GP has no observations.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Log marginal likelihood of the fitted data (model-selection
    /// diagnostic): `−½ yᵀα − Σ log Lᵢᵢ − n/2 log 2π`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::NotFitted`] before the first successful fit.
    pub fn log_marginal_likelihood(&self) -> Result<f64, GpError> {
        let chol = self.chol.as_ref().ok_or(GpError::NotFitted)?;
        let n = self.x.len() as f64;
        // yᵀα where y is centered: recover from alpha through K·alpha = y.
        // We stored only alpha; compute yᵀα = αᵀKα = ‖Lᵀα‖².
        let mut yta = 0.0;
        for i in 0..self.x.len() {
            // (Lᵀ α)_i = Σ_{j>=i} L[j][i] α_j
            let mut v = 0.0;
            for j in i..self.x.len() {
                v += chol.at(j, i) * self.alpha[j];
            }
            yta += v * v;
        }
        Ok(-0.5 * yta - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
    }
}

impl<K: Kernel + fmt::Debug> fmt::Debug for GaussianProcess<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GaussianProcess")
            .field("kernel", &self.kernel)
            .field("observations", &self.x.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SquaredExponential;

    fn fitted_gp() -> GaussianProcess<SquaredExponential> {
        let mut gp = GaussianProcess::new(SquaredExponential::isotropic(1.0, 0.3), 1e-8);
        gp.fit(vec![vec![0.0], vec![0.5], vec![1.0]], vec![1.0, 0.0, 1.0])
            .unwrap();
        gp
    }

    #[test]
    fn interpolates_training_points() {
        let gp = fitted_gp();
        for (x, y) in [(0.0, 1.0), (0.5, 0.0), (1.0, 1.0)] {
            let p = gp.posterior(&[x]).unwrap();
            assert!((p.mean - y).abs() < 1e-3, "at {x}: {} vs {y}", p.mean);
            assert!(p.variance < 1e-4, "variance at data point: {}", p.variance);
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let gp = fitted_gp();
        let near = gp.posterior(&[0.45]).unwrap().variance;
        let far = gp.posterior(&[5.0]).unwrap().variance;
        assert!(far > near);
        assert!((far - 1.0).abs() < 1e-6, "prior variance far away");
    }

    #[test]
    fn mean_reverts_to_data_mean_far_away() {
        let gp = fitted_gp();
        let p = gp.posterior(&[100.0]).unwrap();
        assert!((p.mean - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn single_point_posterior_matches_hand_computation() {
        let mut gp = GaussianProcess::new(SquaredExponential::new(2.0, vec![1.0]), 0.0);
        gp.fit(vec![vec![0.0]], vec![3.0]).unwrap();
        // At the data point: mean = y, var ≈ 0.
        let p = gp.posterior(&[0.0]).unwrap();
        assert!((p.mean - 3.0).abs() < 1e-6);
        // At distance 1: k* = 2e^{-1}, K = 2 (+jitter).
        // mean = ȳ + k*·(y−ȳ)/K = 3 (single point: y−ȳ = 0 → mean = ȳ = 3).
        let p = gp.posterior(&[1.0]).unwrap();
        assert!((p.mean - 3.0).abs() < 1e-6);
        // var = k0 − k*²/K = 2 − (2e⁻¹)²/2
        let expected = 2.0 - (2.0 * (-1.0f64).exp()).powi(2) / 2.0;
        assert!((p.variance - expected).abs() < 1e-6);
    }

    #[test]
    fn errors_are_reported() {
        let mut gp = GaussianProcess::new(SquaredExponential::isotropic(1.0, 1.0), 1e-6);
        assert_eq!(gp.posterior(&[0.0]).unwrap_err(), GpError::NotFitted);
        assert_eq!(gp.fit(vec![], vec![]).unwrap_err(), GpError::NoObservations);
        assert_eq!(
            gp.fit(vec![vec![0.0], vec![0.0, 1.0]], vec![1.0, 2.0])
                .unwrap_err(),
            GpError::DimensionMismatch
        );
        gp.fit(vec![vec![0.0]], vec![1.0]).unwrap();
        assert_eq!(
            gp.posterior(&[0.0, 1.0]).unwrap_err(),
            GpError::DimensionMismatch
        );
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let mut gp = GaussianProcess::new(SquaredExponential::isotropic(1.0, 0.5), 1e-10);
        gp.fit(vec![vec![0.3], vec![0.3], vec![0.7]], vec![1.0, 1.0, 2.0])
            .expect("jitter escalation handles duplicates");
        let p = gp.posterior(&[0.3]).unwrap();
        assert!((p.mean - 1.0).abs() < 0.05);
    }

    #[test]
    fn log_marginal_likelihood_is_finite_and_sane() {
        let gp = fitted_gp();
        let lml = gp.log_marginal_likelihood().unwrap();
        assert!(lml.is_finite());
        // Better-fitting model should have higher LML than an absurd one.
        let mut bad = GaussianProcess::new(SquaredExponential::isotropic(1e-6, 1e-3), 1e-8);
        bad.fit(vec![vec![0.0], vec![0.5], vec![1.0]], vec![1.0, 0.0, 1.0])
            .unwrap();
        assert!(lml > bad.log_marginal_likelihood().unwrap());
    }
}
