//! Classification metrics.

use tensor::Tensor;

/// Fraction of predictions equal to their labels, in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use metrics::accuracy;
///
/// assert_eq!(accuracy(&[0, 1, 2, 2], &[0, 1, 1, 2]), 0.75);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction/label count mismatch"
    );
    assert!(!labels.is_empty(), "accuracy of an empty set is undefined");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

/// Accuracy computed directly from an `[N, C]` logit tensor via per-row
/// argmax.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or the batch size differs from the
/// label count.
pub fn accuracy_from_logits(logits: &Tensor, labels: &[usize]) -> f32 {
    accuracy(&logits.argmax_rows(), labels)
}

/// A `C×C` confusion matrix: `entry(true, predicted)` counts samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    classes: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from prediction/label pairs.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any index is `>= classes`.
    pub fn new(predictions: &[usize], labels: &[usize], classes: usize) -> Self {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        let mut counts = vec![0usize; classes * classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!(p < classes && l < classes, "class index out of range");
            counts[l * classes + p] += 1;
        }
        ConfusionMatrix { counts, classes }
    }

    /// Count of samples with true class `truth` predicted as `pred`.
    pub fn entry(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.classes + pred]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-class recall (`None` when a class has no samples).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: usize = (0..self.classes).map(|p| self.entry(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.entry(class, class) as f32 / row as f32)
        }
    }

    /// Per-class precision (`None` when a class is never predicted).
    pub fn precision(&self, class: usize) -> Option<f32> {
        let col: usize = (0..self.classes).map(|t| self.entry(t, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.entry(class, class) as f32 / col as f32)
        }
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f32 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let trace: usize = (0..self.classes).map(|c| self.entry(c, c)).sum();
        trace as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bounds() {
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_accuracy_panics() {
        let _ = accuracy(&[], &[]);
    }

    #[test]
    fn logits_argmax_accuracy() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        assert!((accuracy_from_logits(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = ConfusionMatrix::new(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(cm.entry(0, 0), 1);
        assert_eq!(cm.entry(2, 1), 1);
        assert_eq!(cm.entry(2, 2), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn precision_recall() {
        let cm = ConfusionMatrix::new(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(cm.recall(1), Some(2.0 / 3.0));
        assert_eq!(cm.precision(0), Some(0.5));
        let cm2 = ConfusionMatrix::new(&[0], &[0], 2);
        assert_eq!(cm2.recall(1), None);
        assert_eq!(cm2.precision(1), None);
    }
}
