//! Average precision / mAP for object detection (Fig. 3(j)).

use datasets::BBox;

/// One scored detection in one image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Index of the image the detection belongs to.
    pub image: usize,
    /// Predicted box.
    pub bbox: BBox,
    /// Confidence score (higher = more confident).
    pub score: f32,
}

/// Average precision at the given IoU threshold over a set of images.
///
/// `ground_truth[i]` holds the true boxes of image `i`; detections may
/// arrive in any order and are ranked globally by score. Uses the
/// all-points interpolated AP (area under the precision envelope), the
/// PASCAL-VOC-2010 convention.
///
/// Returns 0 when there are no ground-truth boxes.
///
/// # Example
///
/// ```
/// use datasets::BBox;
/// use metrics::{average_precision, Detection};
///
/// let gt = vec![vec![BBox::new(0.0, 0.0, 10.0, 10.0)]];
/// let dets = vec![Detection { image: 0, bbox: BBox::new(0.0, 0.0, 10.0, 10.0), score: 0.9 }];
/// assert!((average_precision(&dets, &gt, 0.5) - 1.0).abs() < 1e-6);
/// ```
pub fn average_precision(
    detections: &[Detection],
    ground_truth: &[Vec<BBox>],
    iou_threshold: f32,
) -> f32 {
    let total_gt: usize = ground_truth.iter().map(Vec::len).sum();
    if total_gt == 0 {
        return 0.0;
    }
    let mut dets: Vec<&Detection> = detections.iter().collect();
    // Descending by score with NaN ranked *last*: a NaN-scored detection
    // is the least credible, and must not tie-poison the comparator the
    // way partial_cmp's Equal fallback did (which made the ranking — and
    // hence AP — depend on the input order).
    dets.sort_by(|a, b| tensor::nan_low_cmp(b.score, a.score));

    let mut matched: Vec<Vec<bool>> = ground_truth.iter().map(|g| vec![false; g.len()]).collect();
    let mut tp = Vec::with_capacity(dets.len());
    for det in dets {
        let mut best_iou = 0.0f32;
        let mut best_j = None;
        if det.image < ground_truth.len() {
            for (j, gt) in ground_truth[det.image].iter().enumerate() {
                let iou = det.bbox.iou(gt);
                if iou > best_iou {
                    best_iou = iou;
                    best_j = Some(j);
                }
            }
        }
        match best_j {
            Some(j) if best_iou >= iou_threshold && !matched[det.image][j] => {
                matched[det.image][j] = true;
                tp.push(true);
            }
            _ => tp.push(false),
        }
    }

    // Precision–recall curve.
    let mut cum_tp = 0usize;
    let mut points = Vec::with_capacity(tp.len());
    for (i, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            cum_tp += 1;
        }
        let precision = cum_tp as f32 / (i + 1) as f32;
        let recall = cum_tp as f32 / total_gt as f32;
        points.push((recall, precision));
    }
    // Area under the precision envelope (all-points interpolation).
    let mut ap = 0.0f32;
    let mut prev_recall = 0.0f32;
    for i in 0..points.len() {
        // lint:allow(R2, reason = "precision is a ratio of counts, never NaN; fold semantics are fine")
        let max_prec_after = points[i..].iter().map(|&(_, p)| p).fold(0.0f32, f32::max);
        let (recall, _) = points[i];
        if recall > prev_recall {
            ap += (recall - prev_recall) * max_prec_after;
            prev_recall = recall;
        }
    }
    ap
}

/// Mean AP over IoU thresholds `0.5` (single-class detection with one
/// threshold, as used for the paper's pedestrian task). Provided as a named
/// wrapper so benches read like the paper's reported metric.
pub fn mean_average_precision(detections: &[Detection], ground_truth: &[Vec<BBox>]) -> f32 {
    average_precision(detections, ground_truth, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x0: f32, y0: f32, x1: f32, y1: f32) -> BBox {
        BBox::new(x0, y0, x1, y1)
    }

    #[test]
    fn perfect_detections_give_ap_one() {
        let gt = vec![vec![bb(0.0, 0.0, 10.0, 10.0), bb(20.0, 20.0, 30.0, 30.0)]];
        let dets = vec![
            Detection {
                image: 0,
                bbox: bb(0.0, 0.0, 10.0, 10.0),
                score: 0.9,
            },
            Detection {
                image: 0,
                bbox: bb(20.0, 20.0, 30.0, 30.0),
                score: 0.8,
            },
        ];
        assert!((average_precision(&dets, &gt, 0.5) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_detections_give_zero() {
        let gt = vec![vec![bb(0.0, 0.0, 10.0, 10.0)]];
        assert_eq!(average_precision(&[], &gt, 0.5), 0.0);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let gt = vec![vec![bb(0.0, 0.0, 10.0, 10.0)]];
        let dets = vec![
            Detection {
                image: 0,
                bbox: bb(0.0, 0.0, 10.0, 10.0),
                score: 0.9,
            },
            Detection {
                image: 0,
                bbox: bb(0.5, 0.5, 10.0, 10.0),
                score: 0.8,
            },
        ];
        // Second match of the same GT is a false positive; AP stays 1.0
        // because recall saturates at the first hit.
        let ap = average_precision(&dets, &gt, 0.5);
        assert!((ap - 1.0).abs() < 1e-6, "ap {ap}");
    }

    #[test]
    fn false_positive_before_true_positive_lowers_ap() {
        let gt = vec![vec![bb(0.0, 0.0, 10.0, 10.0)]];
        let dets = vec![
            Detection {
                image: 0,
                bbox: bb(50.0, 50.0, 60.0, 60.0),
                score: 0.95,
            },
            Detection {
                image: 0,
                bbox: bb(0.0, 0.0, 10.0, 10.0),
                score: 0.5,
            },
        ];
        let ap = average_precision(&dets, &gt, 0.5);
        assert!((ap - 0.5).abs() < 1e-6, "ap {ap}");
    }

    #[test]
    fn iou_threshold_gates_matches() {
        let gt = vec![vec![bb(0.0, 0.0, 10.0, 10.0)]];
        let half = Detection {
            image: 0,
            bbox: bb(5.0, 0.0, 15.0, 10.0),
            score: 0.9,
        };
        // IoU = 1/3 → matches at 0.3, not at 0.5.
        assert!(average_precision(&[half], &gt, 0.3) > 0.9);
        assert_eq!(average_precision(&[half], &gt, 0.5), 0.0);
    }

    #[test]
    fn missed_ground_truth_bounds_recall() {
        let gt = vec![
            vec![bb(0.0, 0.0, 10.0, 10.0)],
            vec![bb(0.0, 0.0, 10.0, 10.0)],
        ];
        let dets = vec![Detection {
            image: 0,
            bbox: bb(0.0, 0.0, 10.0, 10.0),
            score: 0.9,
        }];
        // One of two GTs found, perfect precision → AP = 0.5.
        assert!((average_precision(&dets, &gt, 0.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_ground_truth_is_zero() {
        assert_eq!(average_precision(&[], &[], 0.5), 0.0);
        assert_eq!(mean_average_precision(&[], &[vec![]]), 0.0);
    }

    #[test]
    fn nan_scored_detection_ranks_last_and_cannot_poison_ap() {
        // Regression for the partial_cmp(..).unwrap_or(Equal) ranking:
        // a NaN score made every comparison against it a tie, so the
        // global ranking (and the AP) depended on detection order.
        let gt = vec![vec![bb(0.0, 0.0, 10.0, 10.0)]];
        let hit = Detection {
            image: 0,
            bbox: bb(0.0, 0.0, 10.0, 10.0),
            score: 0.9,
        };
        let poison = Detection {
            image: 0,
            bbox: bb(50.0, 50.0, 60.0, 60.0),
            score: f32::NAN,
        };
        // NaN ranks below every finite score, so the true positive is
        // scanned first and AP stays 1.0 — for both input orders.
        let ap_a = average_precision(&[hit, poison], &gt, 0.5);
        let ap_b = average_precision(&[poison, hit], &gt, 0.5);
        assert!(ap_a.is_finite() && (ap_a - 1.0).abs() < 1e-6, "ap {ap_a}");
        assert_eq!(ap_a, ap_b, "AP must not depend on detection order");
        // And it matches the same list with the poison detection scored
        // strictly worst instead of NaN.
        let mut worst = poison;
        worst.score = f32::NEG_INFINITY;
        let ap_c = average_precision(&[hit, worst], &gt, 0.5);
        assert_eq!(ap_a, ap_c);
    }
}
