//! Evaluation metrics for the BayesFT reproduction: classification accuracy
//! and confusion matrices (Figs. 2–3), and IoU-based average precision for
//! the object-detection experiment (Fig. 3(j)).

mod classify;
mod map;

pub use classify::{accuracy, accuracy_from_logits, ConfusionMatrix};
pub use map::{average_precision, mean_average_precision, Detection};
