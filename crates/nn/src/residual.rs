//! Residual and pre-activation residual blocks (He et al., refs [23], [26]),
//! used by the ResNet-18 and PreAct-ResNet model families of Fig. 3(d, f–h).

use tensor::Tensor;

use crate::{Layer, Mode, Param, Sequential, Workspace};

/// A residual block: `y = main(x) + shortcut(x)`.
///
/// With no shortcut the identity is used, which requires `main` to preserve
/// the input shape.
///
/// # Example
///
/// ```
/// use nn::{Identity, Layer, Mode, Residual, Sequential};
/// use tensor::Tensor;
///
/// // main = identity, shortcut = identity → y = 2x
/// let mut block = Residual::new(
///     Sequential::new(vec![Box::new(Identity::new())]),
///     None,
/// );
/// let y = block.forward(&Tensor::ones(&[1, 4]), Mode::Eval);
/// assert_eq!(y.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
/// ```
#[derive(Clone)]
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
}

impl Residual {
    /// Creates a residual block. A `None` shortcut means identity.
    pub fn new(main: Sequential, shortcut: Option<Sequential>) -> Self {
        Residual { main, shortcut }
    }

    /// The main branch (for dropout-insertion hooks).
    pub fn main_mut(&mut self) -> &mut Sequential {
        &mut self.main
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let main_out = self.main.forward(input, mode);
        let short_out = match &mut self.shortcut {
            Some(s) => s.forward(input, mode),
            None => input.clone(),
        };
        assert_eq!(
            main_out.dims(),
            short_out.dims(),
            "residual branch shape mismatch: main {} vs shortcut {}",
            main_out.shape(),
            short_out.shape()
        );
        main_out.add(&short_out)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        let mut main_out = self.main.forward_ws(input, mode, ws);
        match &mut self.shortcut {
            Some(s) => {
                let short_out = s.forward_ws(input, mode, ws);
                assert_eq!(
                    main_out.dims(),
                    short_out.dims(),
                    "residual branch shape mismatch: main {} vs shortcut {}",
                    main_out.shape(),
                    short_out.shape()
                );
                main_out.add_assign(&short_out);
                ws.recycle(short_out);
            }
            None => {
                assert_eq!(
                    main_out.dims(),
                    input.dims(),
                    "residual branch shape mismatch: main {} vs shortcut {}",
                    main_out.shape(),
                    input.shape()
                );
                main_out.add_assign(input);
            }
        }
        main_out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_main = self.main.backward(grad_out);
        let g_short = match &mut self.shortcut {
            Some(s) => s.backward(grad_out),
            None => grad_out.clone(),
        };
        g_main.add(&g_short)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut g_main = self.main.backward_ws(grad_out, ws);
        match &mut self.shortcut {
            Some(s) => {
                let g_short = s.backward_ws(grad_out, ws);
                g_main.add_assign(&g_short);
                ws.recycle(g_short);
            }
            None => g_main.add_assign(grad_out),
        }
        g_main
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn visit_dropout(&mut self, f: &mut dyn FnMut(&mut crate::Dropout)) {
        self.main.visit_dropout(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_dropout(f);
        }
    }

    fn name(&self) -> &'static str {
        "residual"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("main", &self.main)
            .field("has_shortcut", &self.shortcut.is_some())
            .finish()
    }
}

/// A pre-activation residual block: activations and norms run *before* the
/// convolutions inside `main`, and the skip connection is pure identity (or
/// a projection when shapes change). Structurally this is just [`Residual`];
/// the type exists so model summaries distinguish the two families.
#[derive(Clone)]
pub struct PreActBlock {
    inner: Residual,
}

impl PreActBlock {
    /// Creates a pre-activation block. A `None` shortcut means identity.
    pub fn new(main: Sequential, shortcut: Option<Sequential>) -> Self {
        PreActBlock {
            inner: Residual::new(main, shortcut),
        }
    }

    /// The main branch (for dropout-insertion hooks).
    pub fn main_mut(&mut self) -> &mut Sequential {
        self.inner.main_mut()
    }
}

impl Layer for PreActBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.inner.forward(input, mode)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        self.inner.forward_ws(input, mode, ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.inner.backward(grad_out)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        self.inner.backward_ws(grad_out, ws)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
    }

    fn visit_dropout(&mut self, f: &mut dyn FnMut(&mut crate::Dropout)) {
        self.inner.visit_dropout(f);
    }

    fn name(&self) -> &'static str {
        "preact_block"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for PreActBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreActBlock").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, GradCheck, Identity, Relu};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_residual_doubles() {
        let mut block = Residual::new(Sequential::new(vec![Box::new(Identity::new())]), None);
        let x = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(block.forward(&x, Mode::Eval).as_slice(), &[2.0, -4.0]);
        // Backward: gradient doubles too.
        assert_eq!(block.backward(&x).as_slice(), &[2.0, -4.0]);
    }

    #[test]
    fn residual_gradcheck_with_dense_main() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut block = Residual::new(
            Sequential::new(vec![
                Box::new(Dense::new(3, 3, &mut rng)),
                Box::new(Relu::new()),
                Box::new(Dense::new(3, 3, &mut rng)),
            ]),
            None,
        );
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut rng);
        let gc = GradCheck::new().eps(1e-2);
        assert!(gc.max_input_error(&mut block, &x) < 5e-2);
        assert!(gc.max_param_error(&mut block, &x) < 5e-2);
    }

    #[test]
    fn projection_shortcut_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut block = Residual::new(
            Sequential::new(vec![Box::new(Dense::new(3, 4, &mut rng))]),
            Some(Sequential::new(vec![Box::new(Dense::new(3, 4, &mut rng))])),
        );
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut rng);
        let gc = GradCheck::new().eps(1e-2);
        assert!(gc.max_input_error(&mut block, &x) < 5e-2);
    }

    #[test]
    fn preact_block_delegates() {
        let mut block = PreActBlock::new(Sequential::new(vec![Box::new(Identity::new())]), None);
        let x = Tensor::from_slice(&[3.0]);
        assert_eq!(block.forward(&x, Mode::Eval).as_slice(), &[6.0]);
        assert_eq!(block.name(), "preact_block");
        assert_eq!(block.param_count(), 0);
    }
}
