//! From-scratch neural-network substrate for the BayesFT reproduction.
//!
//! The paper trains PyTorch models; this crate provides the equivalent
//! building blocks in pure Rust: a [`Layer`] trait with explicit
//! forward/backward passes, dense and convolutional layers, the four
//! normalization schemes and four activation functions the paper ablates
//! (Fig. 2), standard and alpha [`Dropout`] (the architectural knob BayesFT
//! searches over), residual and pre-activation blocks, softmax
//! cross-entropy, and SGD/momentum/Adam optimizers.
//!
//! Design notes:
//!
//! * Layers are stateful: `forward` caches whatever `backward` needs, so a
//!   backward call must follow the matching forward call (standard
//!   tape-free reverse mode for sequential graphs).
//! * Parameters are exposed through the visitor
//!   [`Layer::visit_params`], which is also how the `reram` crate injects
//!   weight drift into a trained network — every trainable value, including
//!   normalization gains/biases, is reachable, which is exactly what the
//!   paper's "Achilles heel" argument about normalization requires.
//! * All stochastic layers draw from their own seeded RNG so entire
//!   experiments are reproducible.
//!
//! # Example
//!
//! ```
//! use nn::{Dense, Layer, Mode, Relu, Sequential};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use tensor::Tensor;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 2, &mut rng)),
//! ]);
//! let x = Tensor::ones(&[3, 4]);
//! let logits = net.forward(&x, Mode::Eval);
//! assert_eq!(logits.dims(), &[3, 2]);
//! ```

mod activation;
mod conv;
mod dense;
mod dropout;
mod gradcheck;
mod layer;
mod loss;
mod norm;
mod optim;
mod param;
mod residual;
mod workspace;

pub use activation::{Activation, Elu, Gelu, LeakyRelu, Relu};
pub use conv::{AvgPool2d, Conv2d, Flatten, GlobalAvgPool, MaxPool2d};
pub use dense::Dense;
pub use dropout::{AlphaDropout, Dropout};
pub use gradcheck::{backward_ws_divergence, numeric_gradient, GradCheck};
pub use layer::{Identity, Layer, Sequential};
pub use loss::{mse_loss, one_hot, softmax_cross_entropy, softmax_cross_entropy_ws, LossOutput};
pub use norm::{BatchNorm, GroupNorm, InstanceNorm, LayerNorm, NormKind};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::{Mode, Param, ParamKind};
pub use residual::{PreActBlock, Residual};
pub use workspace::Workspace;
