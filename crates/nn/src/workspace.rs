//! A reusable scratch arena for allocation-free evaluation passes.

use tensor::Tensor;

/// A pool of recyclable `f32` buffers backing eval-mode forward passes.
///
/// The Monte-Carlo estimator of the paper's Eq. (4) runs thousands of
/// `inject → forward → restore` trials per Bayesian-optimization candidate.
/// Without reuse, every `Dense`/`Conv2d`/activation output is a fresh heap
/// allocation, making the hot path allocator-bound instead of FLOP-bound.
/// A `Workspace` breaks that: layers obtain output buffers from the pool
/// via [`Layer::forward_ws`](crate::Layer::forward_ws) and callers return
/// them with [`Workspace::recycle`], so after a warm-up trial the steady
/// state performs **zero** heap allocations in the forward pass.
///
/// Buffers are handed out best-fit (smallest capacity that holds the
/// request); because an evaluation pass requests the same sizes in the
/// same order every trial, the pool stabilizes after the first pass.
///
/// Each Monte-Carlo worker thread owns its own `Workspace` ("per replica"),
/// so no synchronization is involved.
///
/// # Example
///
/// ```
/// use nn::{Dense, Layer, Mode, Workspace};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = Dense::new(3, 2, &mut rng);
/// let x = Tensor::ones(&[4, 3]);
/// let mut ws = Workspace::new();
/// let y = net.forward_ws(&x, Mode::Eval, &mut ws);
/// assert_eq!(y.as_slice(), net.forward(&x, Mode::Eval).as_slice());
/// ws.recycle(y); // return the buffer for the next trial
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are allocated on first use and
    /// recycled thereafter.
    pub fn new() -> Self {
        Workspace { pool: Vec::new() }
    }

    /// Takes a buffer of exactly `len` elements with **unspecified
    /// contents** (stale data from a previous use, or zeros when freshly
    /// allocated) — callers must fully overwrite it. Skipping the
    /// zero-fill matters: every consumer on the eval hot path overwrites
    /// the whole buffer anyway (`gemm_*_into`/`im2col_into` zero
    /// internally, elementwise kernels write every slot), and a
    /// per-trial `O(len)` clear would double the memory traffic this
    /// pool exists to avoid.
    ///
    /// Reuses the pooled buffer with the smallest sufficient capacity;
    /// allocates only when no pooled buffer fits.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None;
        for (i, v) in self.pool.iter().enumerate() {
            let cap = v.capacity();
            if cap >= len && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut v = self.pool.swap_remove(i);
                if v.len() > len {
                    v.truncate(len);
                } else {
                    v.resize(len, 0.0);
                }
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Takes a tensor of the given shape with unspecified contents (see
    /// [`Workspace::take`]) — callers must fully overwrite it.
    pub fn take_tensor(&mut self, dims: &[usize]) -> Tensor {
        let len = dims.iter().product();
        Tensor::from_vec(self.take(len), dims).expect("buffer length matches requested dims")
    }

    /// Takes a tensor of the given shape holding a copy of `src`'s data.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the element count of `dims`.
    pub fn take_copy(&mut self, src: &Tensor, dims: &[usize]) -> Tensor {
        let mut out = self.take_tensor(dims);
        out.as_mut_slice().copy_from_slice(src.as_slice());
        out
    }

    /// Returns a tensor's buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.recycle_vec(t.into_vec());
    }

    /// Returns a raw buffer to the pool.
    pub fn recycle_vec(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 {
            self.pool.push(v);
        }
    }

    /// Number of buffers currently pooled (idle).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Total capacity currently pooled, in `f32` elements.
    pub fn pooled_elements(&self) -> usize {
        self.pool.iter().map(Vec::capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_exact_length_and_fresh_buffers_are_zeroed() {
        let mut ws = Workspace::new();
        let mut v = ws.take(5);
        assert_eq!(v, vec![0.0; 5], "fresh allocation is zeroed");
        v[0] = 7.0;
        ws.recycle_vec(v);
        // Recycled buffers have unspecified contents but exact length.
        let v = ws.take(3);
        assert_eq!(v.len(), 3);
        let v2 = ws.take(9); // no pooled fit (cap 5 < 9) → fresh, zeroed
        assert_eq!(v2, vec![0.0; 9]);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take(100);
        let small = ws.take(10);
        ws.recycle_vec(big);
        ws.recycle_vec(small);
        let got = ws.take(8);
        assert_eq!(got.capacity(), 10, "best fit should pick the 10-cap buffer");
        assert_eq!(ws.pooled_buffers(), 1);
    }

    #[test]
    fn steady_state_reuses_buffers() {
        let mut ws = Workspace::new();
        // Warm up with the trial's request pattern.
        let a = ws.take(16);
        let b = ws.take(32);
        ws.recycle_vec(a);
        ws.recycle_vec(b);
        let elements = ws.pooled_elements();
        for _ in 0..5 {
            let a = ws.take(16);
            let b = ws.take(32);
            ws.recycle_vec(a);
            ws.recycle_vec(b);
        }
        assert_eq!(ws.pooled_elements(), elements, "pool must not grow");
        assert_eq!(ws.pooled_buffers(), 2);
    }

    #[test]
    fn take_tensor_round_trips_shape() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor(&[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        ws.recycle(t);
        assert_eq!(ws.pooled_buffers(), 1);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.recycle_vec(Vec::new());
        assert_eq!(ws.pooled_buffers(), 0);
    }
}
