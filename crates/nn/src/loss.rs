//! Loss functions: softmax cross-entropy (classification) and mean squared
//! error (regression heads in the detector).

use tensor::Tensor;

use crate::Workspace;

/// Value and input gradient of a loss evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the input logits.
    pub grad: Tensor,
}

/// Softmax + cross-entropy, fused for numerical stability.
///
/// `logits: [N, C]`, `labels: [N]` with class indices `< C`. Returns the mean
/// cross-entropy and its gradient `softmax(logits) − onehot(labels)` scaled
/// by `1/N`.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, label count differs from the batch
/// size, or any label is out of range.
///
/// # Example
///
/// ```
/// use nn::softmax_cross_entropy;
/// use tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0], &[2, 2])?;
/// let out = softmax_cross_entropy(&logits, &[0, 1]);
/// assert!(out.loss < 1e-3); // confidently correct
/// # Ok::<(), tensor::TensorError>(())
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    let grad = logits.clone();
    softmax_cross_entropy_impl(grad, labels)
}

/// [`softmax_cross_entropy`] drawing the gradient buffer from a reusable
/// [`Workspace`] instead of the allocator.
///
/// Loss and gradient are **bit-identical** to the allocating variant (one
/// shared kernel); only the buffer provenance differs. Callers hand the
/// gradient back via [`Workspace::recycle`] once `backward` has consumed
/// it, making the whole training step allocation-free in the steady state.
///
/// # Panics
///
/// Panics like [`softmax_cross_entropy`].
pub fn softmax_cross_entropy_ws(
    logits: &Tensor,
    labels: &[usize],
    ws: &mut Workspace,
) -> LossOutput {
    let grad = ws.take_copy(logits, logits.dims());
    softmax_cross_entropy_impl(grad, labels)
}

/// Shared kernel: `grad` arrives holding a copy of the logits and is
/// transformed in place into `(softmax(logits) − onehot(labels))/N`.
fn softmax_cross_entropy_impl(mut grad: Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(
        grad.rank(),
        2,
        "softmax_cross_entropy expects [N, C] logits"
    );
    let (n, c) = (grad.dims()[0], grad.dims()[1]);
    assert_eq!(labels.len(), n, "label count must equal batch size");
    // Row-wise softmax in place — the same per-row arithmetic as
    // `Tensor::softmax_rows` (max-shift, exp, normalize).
    for r in 0..n {
        let row = grad.row_mut(r);
        // lint:allow(R2, reason = "stability shift only: a NaN logit still poisons the row through exp(NaN), matching Tensor::softmax_rows bit-for-bit")
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            z += *v;
        }
        if z > 0.0 {
            for v in row.iter_mut() {
                *v /= z;
            }
        }
    }
    let mut loss = 0.0f32;
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let p = grad.at(&[i, label]).max(1e-12);
        loss -= p.ln();
        *grad.at_mut(&[i, label]) -= 1.0;
    }
    grad.scale_inplace(inv_n);
    LossOutput {
        loss: loss * inv_n,
        grad,
    }
}

/// Mean squared error between `pred` and `target` (same shape), averaged
/// over all elements. Gradient is `2(pred − target)/len`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> LossOutput {
    assert_eq!(pred.dims(), target.dims(), "mse shape mismatch");
    let diff = pred.sub(target);
    let n = pred.len().max(1) as f32;
    LossOutput {
        loss: diff.norm_sq() / n,
        grad: diff.scale(2.0 / n),
    }
}

/// One-hot encodes labels into an `[N, C]` tensor.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut t = Tensor::zeros(&[labels.len(), classes]);
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        *t.at_mut(&[i, label]) = 1.0;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = out.grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9, -0.7, 0.3], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut hi = logits.clone();
            hi.as_mut_slice()[i] += eps;
            let mut lo = logits.clone();
            lo.as_mut_slice()[i] -= eps;
            let num = (softmax_cross_entropy(&hi, &labels).loss
                - softmax_cross_entropy(&lo, &labels).loss)
                / (2.0 * eps);
            assert!(
                (num - out.grad.as_slice()[i]).abs() < 1e-3,
                "element {i}: {num} vs {}",
                out.grad.as_slice()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let _ = softmax_cross_entropy(&Tensor::zeros(&[1, 2]), &[5]);
    }

    #[test]
    fn ws_variant_is_bit_identical_and_recyclable() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9, -0.7, 0.3], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let reference = softmax_cross_entropy(&logits, &labels);
        let mut ws = Workspace::new();
        for _ in 0..2 {
            // Second pass runs on a recycled (stale-content) buffer.
            let out = softmax_cross_entropy_ws(&logits, &labels, &mut ws);
            assert_eq!(out.loss.to_bits(), reference.loss.to_bits());
            let same = out
                .grad
                .as_slice()
                .iter()
                .zip(reference.grad.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "workspace gradient diverged");
            ws.recycle(out.grad);
        }
        assert_eq!(ws.pooled_buffers(), 1);
    }

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let out = mse_loss(&a, &a);
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn mse_gradient_direction() {
        let pred = Tensor::from_slice(&[2.0]);
        let target = Tensor::from_slice(&[0.0]);
        let out = mse_loss(&pred, &target);
        assert_eq!(out.loss, 4.0);
        assert_eq!(out.grad.as_slice(), &[4.0]);
    }

    #[test]
    fn one_hot_rows() {
        let t = one_hot(&[1, 0], 3);
        assert_eq!(t.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 0.0, 0.0]);
    }
}
