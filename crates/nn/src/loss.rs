//! Loss functions: softmax cross-entropy (classification) and mean squared
//! error (regression heads in the detector).

use tensor::Tensor;

/// Value and input gradient of a loss evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the input logits.
    pub grad: Tensor,
}

/// Softmax + cross-entropy, fused for numerical stability.
///
/// `logits: [N, C]`, `labels: [N]` with class indices `< C`. Returns the mean
/// cross-entropy and its gradient `softmax(logits) − onehot(labels)` scaled
/// by `1/N`.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, label count differs from the batch
/// size, or any label is out of range.
///
/// # Example
///
/// ```
/// use nn::softmax_cross_entropy;
/// use tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0], &[2, 2])?;
/// let out = softmax_cross_entropy(&logits, &[0, 1]);
/// assert!(out.loss < 1e-3); // confidently correct
/// # Ok::<(), tensor::TensorError>(())
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(
        logits.rank(),
        2,
        "softmax_cross_entropy expects [N, C] logits"
    );
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "label count must equal batch size");
    let probs = logits.softmax_rows();
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let p = probs.at(&[i, label]).max(1e-12);
        loss -= p.ln();
        *grad.at_mut(&[i, label]) -= 1.0;
    }
    grad.scale_inplace(inv_n);
    LossOutput {
        loss: loss * inv_n,
        grad,
    }
}

/// Mean squared error between `pred` and `target` (same shape), averaged
/// over all elements. Gradient is `2(pred − target)/len`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> LossOutput {
    assert_eq!(pred.dims(), target.dims(), "mse shape mismatch");
    let diff = pred.sub(target);
    let n = pred.len().max(1) as f32;
    LossOutput {
        loss: diff.norm_sq() / n,
        grad: diff.scale(2.0 / n),
    }
}

/// One-hot encodes labels into an `[N, C]` tensor.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut t = Tensor::zeros(&[labels.len(), classes]);
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        *t.at_mut(&[i, label]) = 1.0;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = out.grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9, -0.7, 0.3], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut hi = logits.clone();
            hi.as_mut_slice()[i] += eps;
            let mut lo = logits.clone();
            lo.as_mut_slice()[i] -= eps;
            let num = (softmax_cross_entropy(&hi, &labels).loss
                - softmax_cross_entropy(&lo, &labels).loss)
                / (2.0 * eps);
            assert!(
                (num - out.grad.as_slice()[i]).abs() < 1e-3,
                "element {i}: {num} vs {}",
                out.grad.as_slice()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let _ = softmax_cross_entropy(&Tensor::zeros(&[1, 2]), &[5]);
    }

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let out = mse_loss(&a, &a);
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn mse_gradient_direction() {
        let pred = Tensor::from_slice(&[2.0]);
        let target = Tensor::from_slice(&[0.0]);
        let out = mse_loss(&pred, &target);
        assert_eq!(out.loss, 4.0);
        assert_eq!(out.grad.as_slice(), &[4.0]);
    }

    #[test]
    fn one_hot_rows() {
        let t = one_hot(&[1, 0], 3);
        assert_eq!(t.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 0.0, 0.0]);
    }
}
