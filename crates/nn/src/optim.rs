//! Optimizers: plain/momentum SGD (Algorithm 1 line 6) and Adam.

use tensor::Tensor;

use crate::{Layer, Param, ParamKind};

/// A gradient-descent update rule applied to a network's parameters.
///
/// Optimizers carry per-parameter state (momentum buffers, Adam moments)
/// keyed by visit order, which is stable for a fixed network.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// the network's parameters, then zeroes the gradients.
    fn step(&mut self, network: &mut dyn Layer);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Updates the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and decoupled weight
/// decay (decay applies only to [`ParamKind::Weight`] parameters).
///
/// # Example
///
/// ```
/// use nn::{Dense, Layer, Mode, Optimizer, Sgd};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = Dense::new(2, 1, &mut rng);
/// let mut opt = Sgd::new(0.1).momentum(0.9);
/// let _ = net.forward(&Tensor::ones(&[1, 2]), Mode::Train);
/// let _ = net.backward(&Tensor::ones(&[1, 1]));
/// opt.step(&mut net); // weights moved against the gradient
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    clip_norm: Option<f32>,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            clip_norm: None,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum.
    pub fn momentum(mut self, beta: f32) -> Self {
        self.momentum = beta;
        self
    }

    /// Enables L2 weight decay on weight matrices.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Enables global-norm gradient clipping: if the concatenated gradient
    /// norm exceeds `max_norm`, every gradient is scaled down to meet it.
    /// Stabilizes training when Bayesian-optimization trials visit extreme
    /// dropout rates.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn clip_norm(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "clip norm must be positive");
        self.clip_norm = Some(max_norm);
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, network: &mut dyn Layer) {
        if let Some(max_norm) = self.clip_norm {
            let mut norm_sq = 0.0f32;
            network.visit_params(&mut |p| norm_sq += p.grad.norm_sq());
            let norm = norm_sq.sqrt();
            if norm > max_norm && norm.is_finite() {
                let scale = max_norm / norm;
                network.visit_params(&mut |p| p.grad.scale_inplace(scale));
            } else if !norm.is_finite() {
                // A NaN/inf gradient would permanently poison the weights:
                // drop the update entirely.
                network.visit_params(&mut |p| p.zero_grad());
            }
        }
        let lr = self.lr;
        let beta = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        // Strictly in place: weight decay folds into the gradient buffer,
        // the update reads the gradient directly (split field borrows, no
        // temporaries), and `zero_grad` reuses the gradient buffer — the
        // only allocations are the one-time velocity buffers.
        network.visit_params(&mut |p: &mut Param| {
            let Param { value, grad, kind } = p;
            if wd > 0.0 && *kind == ParamKind::Weight {
                grad.add_scaled(value, wd);
            }
            if beta > 0.0 {
                if velocity.len() <= idx {
                    velocity.push(Tensor::zeros(value.dims()));
                }
                let v = &mut velocity[idx];
                v.scale_inplace(beta);
                v.add_assign(grad);
                value.add_scaled(v, -lr);
            } else {
                value.add_scaled(grad, -lr);
            }
            p.zero_grad();
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<(Tensor, Tensor)>,
}

impl Adam {
    /// Creates Adam with learning rate `lr` and the standard
    /// `β₁ = 0.9, β₂ = 0.999`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, network: &mut dyn Layer) {
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let moments = &mut self.moments;
        let mut idx = 0usize;
        network.visit_params(&mut |p: &mut Param| {
            if moments.len() <= idx {
                moments.push((Tensor::zeros(p.value.dims()), Tensor::zeros(p.value.dims())));
            }
            let (m, v) = &mut moments[idx];
            for ((mv, vv), (&g, w)) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(p.grad.as_slice().iter().zip(p.value.as_mut_slice()))
            {
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.zero_grad();
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Mode};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tensor::Tensor;

    /// Trains y = 2x with a 1-unit dense layer; the loss must shrink.
    fn converges(opt: &mut dyn Optimizer) -> bool {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Dense::new(1, 1, &mut rng);
        let x = Tensor::from_vec(vec![0.5, 1.0, -1.0, 2.0], &[4, 1]).unwrap();
        let y = x.scale(2.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let pred = net.forward(&x, Mode::Train);
            let out = crate::mse_loss(&pred, &y);
            last = out.loss;
            first.get_or_insert(out.loss);
            let _ = net.backward(&out.grad);
            opt.step(&mut net);
        }
        last < 0.01 * first.unwrap().max(1e-6) || last < 1e-4
    }

    #[test]
    fn sgd_converges_on_linear_problem() {
        assert!(converges(&mut Sgd::new(0.1)));
    }

    #[test]
    fn momentum_sgd_converges() {
        assert!(converges(&mut Sgd::new(0.05).momentum(0.9)));
    }

    #[test]
    fn adam_converges() {
        assert!(converges(&mut Adam::new(0.05)));
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Dense::new(2, 2, &mut rng);
        let _ = net.forward(&Tensor::ones(&[1, 2]), Mode::Train);
        let _ = net.backward(&Tensor::ones(&[1, 2]));
        let mut opt = Sgd::new(0.01);
        opt.step(&mut net);
        let mut all_zero = true;
        net.visit_params(&mut |p| all_zero &= p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert!(all_zero);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = Dense::new(2, 2, &mut rng);
        let norm_before = {
            let mut n = 0.0;
            net.visit_params(&mut |p| {
                if p.kind == ParamKind::Weight {
                    n += p.value.norm_sq()
                }
            });
            n
        };
        // No backward pass: gradients are zero, only decay acts.
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        opt.step(&mut net);
        let mut norm_after = 0.0;
        net.visit_params(&mut |p| {
            if p.kind == ParamKind::Weight {
                norm_after += p.value.norm_sq()
            }
        });
        assert!(norm_after < norm_before);
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn invalid_lr_panics() {
        let _ = Sgd::new(-0.1);
    }
}
