//! The [`Layer`] trait and basic containers.

use tensor::Tensor;

use crate::{Mode, Param, Workspace};

/// A differentiable network component.
///
/// A training-mode `forward` caches activations; `backward` consumes them,
/// accumulates parameter gradients, and returns the gradient with respect
/// to the layer's input. Calling `backward` without a preceding
/// training-mode `forward` on the same input is a programming error and
/// panics. Evaluation-mode forwards skip the cache refresh entirely (the
/// gradient tape is dead weight on the inference hot path), so `backward`
/// after an eval-only forward is unsupported.
///
/// The trait is object-safe: networks are built as `Vec<Box<dyn Layer>>`
/// ([`Sequential`]).
pub trait Layer: Send {
    /// Computes the layer output for `input`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// [`Layer::forward`] drawing output (and internal scratch) buffers
    /// from a reusable [`Workspace`] instead of the allocator.
    ///
    /// The returned tensor is **bit-identical** to `forward(input, mode)`;
    /// only the provenance of its buffer differs. Callers should hand the
    /// result back via [`Workspace::recycle`] once done so the next pass
    /// reuses it — after one warm-up pass, an eval-mode forward through
    /// layers that override this method performs zero heap allocations.
    ///
    /// In `Mode::Eval`, activation/input caches needed by `backward` are
    /// *not* refreshed (calling `backward` after an eval forward is
    /// unsupported — see [`Layer::forward`]). In `Mode::Train`, overriding
    /// layers refresh their caches **in place** into persistent per-layer
    /// buffers (grown once, reused across steps), so a whole SGD step —
    /// `forward_ws` + [`Layer::backward_ws`] + an in-place optimizer — is
    /// allocation-free in the steady state.
    ///
    /// The default implementation ignores the workspace and calls
    /// `forward`, so layers without an override remain correct (just
    /// allocating).
    fn forward_ws(&mut self, input: &Tensor, mode: Mode, _ws: &mut Workspace) -> Tensor {
        self.forward(input, mode)
    }

    /// Backpropagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer's input.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// [`Layer::backward`] drawing the gradient output (and internal
    /// scratch: transposed-gemm temporaries, `col2im` images, bias-sum
    /// accumulators) from a reusable [`Workspace`] instead of the
    /// allocator.
    ///
    /// The returned gradient and the accumulated parameter gradients are
    /// **bit-identical** to `backward(grad_out)`; only the provenance of
    /// the buffers differs. Callers hand the result back via
    /// [`Workspace::recycle`] once consumed — after one warm-up step, a
    /// training step through layers that override both this method and the
    /// train-mode [`Layer::forward_ws`] performs zero heap allocations.
    ///
    /// The default implementation ignores the workspace and calls
    /// `backward`, so layers without an override remain correct (just
    /// allocating).
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run.
    fn backward_ws(&mut self, grad_out: &Tensor, _ws: &mut Workspace) -> Tensor {
        self.backward(grad_out)
    }

    /// Visits every trainable parameter in a stable order.
    ///
    /// The default implementation visits nothing (parameter-free layer).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visits every [`Dropout`](crate::Dropout) layer in a stable order.
    ///
    /// This is the hook BayesFT uses to re-target per-layer dropout rates
    /// between Bayesian-optimization trials without rebuilding the network.
    /// The default implementation visits nothing.
    fn visit_dropout(&mut self, _f: &mut dyn FnMut(&mut crate::Dropout)) {}

    /// Short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Deep-copies the layer (weights, caches, RNG state) behind a fresh
    /// box.
    ///
    /// This is what lets the experiment engine evaluate independent
    /// Monte-Carlo drift samples on per-thread replicas of one trained
    /// network: each worker clones the pristine model, injects its own
    /// drift, and runs forward passes without synchronizing on the
    /// original.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Zeroes all parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

/// Invalidates a persistent activation cache after an eval-mode forward:
/// the buffer's capacity is retained (the next training step reuses it,
/// still allocation-free), but its length drops to zero so a stray
/// `backward` fails loudly instead of silently backpropagating through a
/// stale tape from an earlier training step.
pub(crate) fn invalidate_cache(slot: &mut Option<Tensor>) {
    if let Some(t) = slot {
        t.reuse_as(&[0]);
    }
}

/// Refreshes a persistent activation cache in place: the slot's buffer is
/// resized within its capacity (growing only to a new high-water mark) and
/// overwritten with `src`, so steady-state training steps never allocate
/// for the cache. A `None` slot is filled with a fresh copy once.
pub(crate) fn cache_into(slot: &mut Option<Tensor>, src: &[f32], dims: &[usize]) {
    match slot {
        Some(t) => {
            t.reuse_as(dims);
            t.as_mut_slice().copy_from_slice(src);
        }
        None => {
            // lint:allow(R1, reason = "cold-start fill only; steady-state steps take the in-place Some arm")
            *slot = Some(Tensor::from_vec(src.to_vec(), dims).expect("cache dims match source"));
        }
    }
}

/// The identity layer (useful as a residual shortcut or norm placeholder).
///
/// # Example
///
/// ```
/// use nn::{Identity, Layer, Mode};
/// use tensor::Tensor;
///
/// let mut id = Identity::new();
/// let x = Tensor::ones(&[2, 3]);
/// assert_eq!(id.forward(&x, Mode::Eval).as_slice(), x.as_slice());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Identity;

impl Identity {
    /// Creates an identity layer.
    pub fn new() -> Self {
        Identity
    }
}

impl Layer for Identity {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        input.clone()
    }

    fn forward_ws(&mut self, input: &Tensor, _mode: Mode, ws: &mut Workspace) -> Tensor {
        ws.take_copy(input, input.dims())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        ws.take_copy(grad_out, grad_out.dims())
    }

    fn name(&self) -> &'static str {
        "identity"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// An ordered chain of layers, itself a [`Layer`].
///
/// # Example
///
/// ```
/// use nn::{Identity, Layer, Mode, Sequential};
/// use tensor::Tensor;
///
/// let mut net = Sequential::new(vec![Box::new(Identity::new()), Box::new(Identity::new())]);
/// let x = Tensor::ones(&[1, 2]);
/// assert_eq!(net.forward(&x, Mode::Eval).as_slice(), x.as_slice());
/// assert_eq!(net.len(), 2);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Sequential {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
        }
    }
}

impl Sequential {
    /// Builds a chain from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// An empty chain (identity behaviour).
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the chain.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Inserts a layer at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > len`.
    pub fn insert(&mut self, index: usize, layer: Box<dyn Layer>) {
        self.layers.insert(index, layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers.
    pub fn layers_mut(&mut self) -> &mut Vec<Box<dyn Layer>> {
        &mut self.layers
    }

    /// Names of all layers in order (for summaries and tests).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            return ws.take_copy(input, input.dims());
        };
        let mut x = first.forward_ws(input, mode, ws);
        for layer in layers {
            let y = layer.forward_ws(&x, mode, ws);
            ws.recycle(x);
            x = y;
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut layers = self.layers.iter_mut().rev();
        let Some(first) = layers.next() else {
            return ws.take_copy(grad_out, grad_out.dims());
        };
        let mut g = first.backward_ws(grad_out, ws);
        for layer in layers {
            let g2 = layer.backward_ws(&g, ws);
            ws.recycle(g);
            g = g2;
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_dropout(&mut self, f: &mut dyn FnMut(&mut crate::Dropout)) {
        for layer in &mut self.layers {
            layer.visit_dropout(f);
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layer_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trips() {
        let mut id = Identity::new();
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(id.forward(&x, Mode::Train).as_slice(), x.as_slice());
        assert_eq!(id.backward(&x).as_slice(), x.as_slice());
        assert_eq!(id.param_count(), 0);
    }

    #[test]
    fn sequential_composes_in_order() {
        #[derive(Clone)]
        struct AddOne;
        impl Layer for AddOne {
            fn forward(&mut self, input: &Tensor, _m: Mode) -> Tensor {
                input.add_scalar(1.0)
            }
            fn backward(&mut self, g: &Tensor) -> Tensor {
                g.clone()
            }
            fn name(&self) -> &'static str {
                "add_one"
            }
            fn clone_box(&self) -> Box<dyn Layer> {
                Box::new(self.clone())
            }
        }
        let mut net = Sequential::new(vec![Box::new(AddOne), Box::new(AddOne)]);
        let y = net.forward(&Tensor::scalar(0.0), Mode::Eval);
        assert_eq!(y.as_slice(), &[2.0]);
        assert_eq!(net.layer_names(), vec!["add_one", "add_one"]);
    }

    #[test]
    fn sequential_insert_and_push() {
        let mut net = Sequential::empty();
        assert!(net.is_empty());
        net.push(Box::new(Identity::new()));
        net.insert(0, Box::new(Identity::new()));
        assert_eq!(net.len(), 2);
    }
}
