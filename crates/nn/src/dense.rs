//! Fully connected layer.

use rand::Rng;
use tensor::{gemm_into, gemm_nt_into, gemm_tn_into, Tensor};

use crate::{
    layer::{cache_into, invalidate_cache},
    Layer, Mode, Param, ParamKind, Workspace,
};

/// A fully connected layer: `y = x·W + b` with `x: [N, in]`, `W: [in, out]`.
///
/// Weights use Xavier-uniform initialization as in the paper (Algorithm 1,
/// initialization step, ref. [17]).
///
/// # Example
///
/// ```
/// use nn::{Dense, Layer, Mode};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut fc = Dense::new(3, 5, &mut rng);
/// let y = fc.forward(&Tensor::ones(&[2, 3]), Mode::Eval);
/// assert_eq!(y.dims(), &[2, 5]);
/// ```
#[derive(Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    input: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight =
            Tensor::xavier_uniform(&[in_features, out_features], in_features, out_features, rng);
        Dense {
            weight: Param::new(weight, ParamKind::Weight),
            bias: Param::new(Tensor::zeros(&[out_features]), ParamKind::Bias),
            input: None,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix (for inspection in tests/reports).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Folds `[N, ...]` input to `[N', in]` (a pure length computation —
    /// the raw gemm runs over slices, no reshape copy).
    fn fold_batch(&self, input: &Tensor) -> usize {
        assert_eq!(
            input.dims().last().copied(),
            Some(self.in_features),
            "dense input feature mismatch: got {}, expected {}",
            input.shape(),
            self.in_features
        );
        input.len() / self.in_features
    }

    /// `out = input·W + b` into a caller-provided `[m, out]` buffer —
    /// identical arithmetic for the allocating and workspace paths.
    fn output_into(&self, input: &Tensor, m: usize, out: &mut Tensor) {
        gemm_into(
            input.as_slice(),
            self.weight.value.as_slice(),
            out.as_mut_slice(),
            m,
            self.in_features,
            self.out_features,
        );
        let bias = self.bias.value.as_slice();
        for r in 0..m {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let m = self.fold_batch(input);
        if mode == Mode::Train {
            cache_into(&mut self.input, input.as_slice(), &[m, self.in_features]);
        } else {
            invalidate_cache(&mut self.input);
        }
        let mut out = Tensor::zeros(&[m, self.out_features]);
        self.output_into(input, m, &mut out);
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        let m = self.fold_batch(input);
        if mode == Mode::Train {
            cache_into(&mut self.input, input.as_slice(), &[m, self.in_features]);
        } else {
            invalidate_cache(&mut self.input);
        }
        let mut out = ws.take_tensor(&[m, self.out_features]);
        self.output_into(input, m, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .input
            .as_ref()
            .expect("backward called before forward on dense layer");
        assert!(
            !x.is_empty(),
            "backward called after an eval-mode forward on dense layer (eval invalidates the tape)"
        );
        let (m, k, n) = (x.dims()[0], self.in_features, self.out_features);
        assert_eq!(grad_out.dims(), &[m, n], "dense gradient shape");
        // dW = xᵀ·g, db = Σ_rows g, dx = g·Wᵀ — each partial product lands
        // in workspace scratch first, then accumulates into the grads (the
        // same two-step arithmetic as the old `add_assign(matmul_*)` form).
        let mut dw = ws.take(k * n);
        gemm_tn_into(x.as_slice(), grad_out.as_slice(), &mut dw, k, m, n);
        for (gw, &d) in self.weight.grad.as_mut_slice().iter_mut().zip(&dw) {
            *gw += d;
        }
        ws.recycle_vec(dw);
        let mut db = ws.take(n);
        db.fill(0.0);
        for r in 0..m {
            let row = &grad_out.as_slice()[r * n..(r + 1) * n];
            for (o, &v) in db.iter_mut().zip(row) {
                *o += v;
            }
        }
        for (gb, &d) in self.bias.grad.as_mut_slice().iter_mut().zip(&db) {
            *gb += d;
        }
        ws.recycle_vec(db);
        let mut dx = ws.take_tensor(&[m, k]);
        gemm_nt_into(
            grad_out.as_slice(),
            self.weight.value.as_slice(),
            dx.as_mut_slice(),
            m,
            n,
            k,
        );
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for Dense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dense")
            .field("in_features", &self.in_features)
            .field("out_features", &self.out_features)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut fc = Dense::new(2, 3, &mut rng);
        // Zero the weights so output equals the bias.
        fc.weight.value.map_inplace(|_| 0.0);
        fc.bias.value = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = fc.forward(&Tensor::ones(&[4, 2]), Mode::Eval);
        assert_eq!(y.dims(), &[4, 3]);
        assert_eq!(y.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn param_count_matches() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut fc = Dense::new(4, 7, &mut rng);
        assert_eq!(fc.param_count(), 4 * 7 + 7);
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut fc = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let _ = fc.forward(&x, Mode::Train);
        let g = Tensor::ones(&[2, 2]);
        let gx = fc.backward(&g);
        assert_eq!(gx.dims(), &[2, 2]);
        // db = column sums of g = [2, 2]
        assert_eq!(fc.bias.grad.as_slice(), &[2.0, 2.0]);
        // dW = xᵀ g = [[4,4],[6,6]]
        assert_eq!(fc.weight.grad.as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut fc = Dense::new(2, 2, &mut rng);
        let _ = fc.backward(&Tensor::ones(&[1, 2]));
    }

    #[test]
    fn rank4_input_is_flattened() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut fc = Dense::new(4, 2, &mut rng);
        let x = Tensor::ones(&[3, 1, 2, 2]);
        // 3 samples, 4 features each — trailing dims are folded.
        let x = x.reshaped(&[3, 4]).unwrap();
        let y = fc.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[3, 2]);
    }
}
