//! Convolution, pooling and flattening layers over `[N, C, H, W]` tensors.

use rand::Rng;
use tensor::{col2im, gemm_into, im2col, im2col_into, Conv2dSpec, Matmul, Pool2dSpec, Tensor};

use crate::{Layer, Mode, Param, ParamKind, Workspace};

/// 2-D convolution lowered to `im2col` + matmul.
///
/// Input `[N, C, H, W]`, output `[N, OC, OH, OW]`. Weights are stored as a
/// `[OC, C·k·k]` matrix, He-normal initialized.
///
/// # Example
///
/// ```
/// use nn::{Conv2d, Layer, Mode};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let y = conv.forward(&Tensor::ones(&[2, 3, 8, 8]), Mode::Eval);
/// assert_eq!(y.dims(), &[2, 8, 8, 8]);
/// ```
#[derive(Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Param,
    bias: Param,
    cols: Vec<Tensor>,
    input_hw: (usize, usize),
    batch: usize,
}

impl Conv2d {
    /// Creates a convolution layer with a square `kernel`, given `stride`
    /// and `padding`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let spec = Conv2dSpec::new(in_channels, out_channels, kernel, stride, padding);
        let fan_in = spec.patch_len();
        let weight = Tensor::he_normal(&[out_channels, fan_in], fan_in, rng);
        Conv2d {
            spec,
            weight: Param::new(weight, ParamKind::Weight),
            bias: Param::new(Tensor::zeros(&[out_channels]), ParamKind::Bias),
            cols: Vec::new(),
            input_hw: (0, 0),
            batch: 0,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "conv2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert_eq!(c, self.spec.in_channels, "conv2d channel mismatch");
        let (oh, ow) = self.spec.output_hw(h, w);
        let oc = self.spec.out_channels;
        self.cols.clear();
        self.input_hw = (h, w);
        self.batch = n;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        let per_sample = c * h * w;
        let out_per_sample = oc * oh * ow;
        for i in 0..n {
            let img = Tensor::from_vec(
                input.as_slice()[i * per_sample..(i + 1) * per_sample].to_vec(),
                &[c, h, w],
            )
            .expect("sample slice has correct length");
            let col = im2col(&img, &self.spec, h, w);
            let y = self.weight.value.matmul(&col); // [OC, OH·OW]
            let dst = &mut out.as_mut_slice()[i * out_per_sample..(i + 1) * out_per_sample];
            for och in 0..oc {
                let b = self.bias.value.as_slice()[och];
                let src = &y.as_slice()[och * oh * ow..(och + 1) * oh * ow];
                for (d, &s) in dst[och * oh * ow..(och + 1) * oh * ow].iter_mut().zip(src) {
                    *d = s + b;
                }
            }
            self.cols.push(col);
        }
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        assert_eq!(input.rank(), 4, "conv2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert_eq!(c, self.spec.in_channels, "conv2d channel mismatch");
        let (oh, ow) = self.spec.output_hw(h, w);
        let oc = self.spec.out_channels;
        let patch = self.spec.patch_len();
        let mut out = ws.take_tensor(&[n, oc, oh, ow]);
        let mut col = ws.take(patch * oh * ow);
        let mut y = ws.take(oc * oh * ow);
        let per_sample = c * h * w;
        let out_per_sample = oc * oh * ow;
        for i in 0..n {
            im2col_into(
                &input.as_slice()[i * per_sample..(i + 1) * per_sample],
                &mut col,
                &self.spec,
                h,
                w,
            );
            gemm_into(
                self.weight.value.as_slice(),
                &col,
                &mut y,
                oc,
                patch,
                oh * ow,
            );
            let dst = &mut out.as_mut_slice()[i * out_per_sample..(i + 1) * out_per_sample];
            for och in 0..oc {
                let b = self.bias.value.as_slice()[och];
                let src = &y[och * oh * ow..(och + 1) * oh * ow];
                for (d, &s) in dst[och * oh * ow..(och + 1) * oh * ow].iter_mut().zip(src) {
                    *d = s + b;
                }
            }
        }
        ws.recycle_vec(col);
        ws.recycle_vec(y);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cols.is_empty(),
            "backward called before forward on conv2d"
        );
        let (h, w) = self.input_hw;
        let (oh, ow) = self.spec.output_hw(h, w);
        let oc = self.spec.out_channels;
        let c = self.spec.in_channels;
        let n = self.batch;
        assert_eq!(grad_out.dims(), &[n, oc, oh, ow], "conv2d gradient shape");
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let out_per_sample = oc * oh * ow;
        let in_per_sample = c * h * w;
        for i in 0..n {
            let g = Tensor::from_vec(
                grad_out.as_slice()[i * out_per_sample..(i + 1) * out_per_sample].to_vec(),
                &[oc, oh * ow],
            )
            .expect("gradient slice has correct length");
            let col = &self.cols[i];
            // dW += g · colᵀ ; db += row sums of g ; dcol = Wᵀ · g
            self.weight.grad.add_assign(&g.matmul_nt(col));
            for och in 0..oc {
                let row_sum: f32 = g.row(och).iter().sum();
                self.bias.grad.as_mut_slice()[och] += row_sum;
            }
            let dcol = self.weight.value.matmul_tn(&g);
            let dimg = col2im(&dcol, &self.spec, h, w);
            grad_in.as_mut_slice()[i * in_per_sample..(i + 1) * in_per_sample]
                .copy_from_slice(dimg.as_slice());
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conv2d").field("spec", &self.spec).finish()
    }
}

/// Max pooling over `[N, C, H, W]`.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    spec: Pool2dSpec,
    argmax: Vec<Vec<usize>>,
    input_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square `window` and `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: Pool2dSpec::new(window, stride),
            argmax: Vec::new(),
            input_dims: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "max_pool2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = self.spec.output_hw(h, w);
        self.argmax.clear();
        self.input_dims = input.dims().to_vec();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let per_sample = c * h * w;
        let out_per_sample = c * oh * ow;
        for i in 0..n {
            let img = Tensor::from_vec(
                input.as_slice()[i * per_sample..(i + 1) * per_sample].to_vec(),
                &[c, h, w],
            )
            .expect("sample slice length");
            let (pooled, idx) = tensor::max_pool2d(&img, &self.spec);
            out.as_mut_slice()[i * out_per_sample..(i + 1) * out_per_sample]
                .copy_from_slice(pooled.as_slice());
            self.argmax.push(idx);
        }
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        assert_eq!(input.rank(), 4, "max_pool2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = self.spec.output_hw(h, w);
        let mut out = ws.take_tensor(&[n, c, oh, ow]);
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        let per_sample = c * h * w;
        let out_per_sample = c * oh * ow;
        // Same window scan as `forward` (shared `tensor::max_pool2d_into`),
        // without argmax bookkeeping (eval never backpropagates).
        for i in 0..n {
            tensor::max_pool2d_into(
                &src[i * per_sample..(i + 1) * per_sample],
                &mut dst[i * out_per_sample..(i + 1) * out_per_sample],
                &self.spec,
                c,
                h,
                w,
                None,
            );
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.argmax.is_empty(),
            "backward called before forward on max_pool2d"
        );
        let n = self.input_dims[0];
        let per_sample: usize = self.input_dims[1..].iter().product();
        let out_per_sample = grad_out.len() / n;
        let mut grad_in = Tensor::zeros(&self.input_dims);
        for i in 0..n {
            let g = Tensor::from_vec(
                grad_out.as_slice()[i * out_per_sample..(i + 1) * out_per_sample].to_vec(),
                &[out_per_sample],
            )
            .expect("gradient slice length");
            let gi = &mut grad_in.as_mut_slice()[i * per_sample..(i + 1) * per_sample];
            for (&gv, &idx) in g.as_slice().iter().zip(&self.argmax[i]) {
                gi[idx] += gv;
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Average pooling over `[N, C, H, W]`.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    spec: Pool2dSpec,
    input_dims: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with a square `window` and `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: Pool2dSpec::new(window, stride),
            input_dims: Vec::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "avg_pool2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = self.spec.output_hw(h, w);
        self.input_dims = input.dims().to_vec();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let per_sample = c * h * w;
        let out_per_sample = c * oh * ow;
        for i in 0..n {
            let img = Tensor::from_vec(
                input.as_slice()[i * per_sample..(i + 1) * per_sample].to_vec(),
                &[c, h, w],
            )
            .expect("sample slice length");
            let pooled = tensor::avg_pool2d(&img, &self.spec);
            out.as_mut_slice()[i * out_per_sample..(i + 1) * out_per_sample]
                .copy_from_slice(pooled.as_slice());
        }
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        assert_eq!(input.rank(), 4, "avg_pool2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = self.spec.output_hw(h, w);
        let mut out = ws.take_tensor(&[n, c, oh, ow]);
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        let per_sample = c * h * w;
        let out_per_sample = c * oh * ow;
        // Same window scan as `forward` (shared `tensor::avg_pool2d_into`).
        for i in 0..n {
            tensor::avg_pool2d_into(
                &src[i * per_sample..(i + 1) * per_sample],
                &mut dst[i * out_per_sample..(i + 1) * out_per_sample],
                &self.spec,
                c,
                h,
                w,
            );
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "backward called before forward on avg_pool2d"
        );
        let n = self.input_dims[0];
        let (c, h, w) = (self.input_dims[1], self.input_dims[2], self.input_dims[3]);
        let (oh, ow) = self.spec.output_hw(h, w);
        let per_sample = c * h * w;
        let out_per_sample = c * oh * ow;
        let mut grad_in = Tensor::zeros(&self.input_dims);
        for i in 0..n {
            let g = Tensor::from_vec(
                grad_out.as_slice()[i * out_per_sample..(i + 1) * out_per_sample].to_vec(),
                &[c, oh, ow],
            )
            .expect("gradient slice length");
            let gi = tensor::avg_pool2d_backward(&g, &self.spec, &[c, h, w]);
            grad_in.as_mut_slice()[i * per_sample..(i + 1) * per_sample]
                .copy_from_slice(gi.as_slice());
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "avg_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool {
            input_dims: Vec::new(),
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "global_avg_pool expects [N, C, H, W]");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        self.input_dims = input.dims().to_vec();
        let mut out = Tensor::zeros(&[n, c]);
        let s = (h * w) as f32;
        for i in 0..n {
            for ch in 0..c {
                let start = (i * c + ch) * h * w;
                let sum: f32 = input.as_slice()[start..start + h * w].iter().sum();
                out.as_mut_slice()[i * c + ch] = sum / s;
            }
        }
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        assert_eq!(input.rank(), 4, "global_avg_pool expects [N, C, H, W]");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let mut out = ws.take_tensor(&[n, c]);
        let s = (h * w) as f32;
        for i in 0..n {
            for ch in 0..c {
                let start = (i * c + ch) * h * w;
                let sum: f32 = input.as_slice()[start..start + h * w].iter().sum();
                out.as_mut_slice()[i * c + ch] = sum / s;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "backward called before forward on global_avg_pool"
        );
        let (n, c, h, w) = (
            self.input_dims[0],
            self.input_dims[1],
            self.input_dims[2],
            self.input_dims[3],
        );
        let mut grad_in = Tensor::zeros(&self.input_dims);
        let inv = 1.0 / (h * w) as f32;
        for i in 0..n {
            for ch in 0..c {
                let g = grad_out.as_slice()[i * c + ch] * inv;
                let start = (i * c + ch) * h * w;
                for v in &mut grad_in.as_mut_slice()[start..start + h * w] {
                    *v = g;
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Flattens `[N, ...]` to `[N, prod(...)]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            input_dims: Vec::new(),
        }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.input_dims = input.dims().to_vec();
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        input.reshaped(&[n, rest]).expect("element count preserved")
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Train {
            return self.forward(input, mode);
        }
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        ws.take_copy(input, &[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "backward called before forward on flatten"
        );
        grad_out
            .reshaped(&self.input_dims)
            .expect("element count preserved")
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GradCheck;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn conv_output_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 4, 3, 1, 0, &mut rng);
        let y = conv.forward(&Tensor::ones(&[2, 1, 5, 5]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 4, 3, 3]);
    }

    #[test]
    fn conv_identity_kernel_reproduces_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.visit_params(&mut |p| match p.kind {
            ParamKind::Weight => p.value = Tensor::ones(&[1, 1]),
            _ => p.value = Tensor::zeros(&[1]),
        });
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 4, 4], 0.0, 1.0, &mut rng);
        let gc = GradCheck::new().eps(1e-2);
        let ierr = gc.max_input_error(&mut conv, &x);
        assert!(ierr < 5e-2, "input grad error {ierr}");
        let perr = gc.max_param_error(&mut conv, &x);
        assert!(perr < 5e-2, "param grad error {perr}");
    }

    #[test]
    fn strided_conv_gradients() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, &mut rng);
        let gc = GradCheck::new().eps(1e-2);
        assert!(gc.max_input_error(&mut conv, &x) < 5e-2);
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let mut pool = MaxPool2d::new(2, 2);
        let x =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0], &[2, 1, 2, 2]).unwrap();
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[4.0, 8.0]);
        let g = pool.backward(&Tensor::from_vec(vec![1.0, 1.0], &[2, 1, 1, 1]).unwrap());
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_gradcheck() {
        let mut pool = AvgPool2d::new(2, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x = Tensor::randn(&[2, 2, 4, 4], 0.0, 1.0, &mut rng);
        assert!(GradCheck::new().max_input_error(&mut pool, &x) < 1e-2);
    }

    #[test]
    fn global_avg_pool_averages_maps() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = gap.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 1]);
        assert_eq!(y.as_slice(), &[4.0]);
        let g = gap.backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap());
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn flatten_round_trips() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 5]);
        let y = fl.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 60]);
        let g = fl.backward(&y);
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
    }
}
