//! Convolution, pooling and flattening layers over `[N, C, H, W]` tensors.

use rand::Rng;
use tensor::{
    col2im_into, gemm_into, gemm_nt_into, gemm_tn_into, im2col_into, Conv2dSpec, Pool2dSpec, Tensor,
};

use crate::{Layer, Mode, Param, ParamKind, Workspace};

/// Refreshes `dims` in place, avoiding the `to_vec` allocation when the
/// cached extents are already current (the steady-state training case).
fn cache_dims(slot: &mut Vec<usize>, dims: &[usize]) {
    if slot.as_slice() != dims {
        slot.clear();
        slot.extend_from_slice(dims);
    }
}

/// 2-D convolution lowered to `im2col` + matmul.
///
/// Input `[N, C, H, W]`, output `[N, OC, OH, OW]`. Weights are stored as a
/// `[OC, C·k·k]` matrix, He-normal initialized.
///
/// # Example
///
/// ```
/// use nn::{Conv2d, Layer, Mode};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let y = conv.forward(&Tensor::ones(&[2, 3, 8, 8]), Mode::Eval);
/// assert_eq!(y.dims(), &[2, 8, 8, 8]);
/// ```
#[derive(Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Param,
    bias: Param,
    cols: Vec<Tensor>,
    input_hw: (usize, usize),
    batch: usize,
}

impl Conv2d {
    /// Creates a convolution layer with a square `kernel`, given `stride`
    /// and `padding`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let spec = Conv2dSpec::new(in_channels, out_channels, kernel, stride, padding);
        let fan_in = spec.patch_len();
        let weight = Tensor::he_normal(&[out_channels, fan_in], fan_in, rng);
        Conv2d {
            spec,
            weight: Param::new(weight, ParamKind::Weight),
            bias: Param::new(Tensor::zeros(&[out_channels]), ParamKind::Bias),
            cols: Vec::new(),
            input_hw: (0, 0),
            batch: 0,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Validates the input layout and returns `(n, c, h, w)`.
    fn check_input(&self, input: &Tensor) -> (usize, usize, usize, usize) {
        assert_eq!(input.rank(), 4, "conv2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert_eq!(c, self.spec.in_channels, "conv2d channel mismatch");
        (n, c, h, w)
    }

    /// Lowers sample `i` into its persistent patch-matrix cache (grown
    /// once, reused across steps — the `backward` tape).
    fn refresh_col(&mut self, i: usize, src: &[f32], h: usize, w: usize) {
        let (oh, ow) = self.spec.output_hw(h, w);
        let dims = [self.spec.patch_len(), oh * ow];
        if self.cols.len() <= i {
            // lint:allow(R1, reason = "tape grows to the batch high-water mark once; steady-state steps take the reuse_as arm in place")
            self.cols.push(Tensor::zeros(&dims));
        } else {
            self.cols[i].reuse_as(&dims);
        }
        im2col_into(src, self.cols[i].as_mut_slice(), &self.spec, h, w);
    }

    /// Train-mode forward kernel: refreshes the per-sample im2col tapes and
    /// mixes outputs into `out` — one implementation behind both the
    /// allocating and workspace paths, so they cannot desynchronize.
    fn train_forward_into(&mut self, input: &Tensor, out: &mut Tensor, y: &mut [f32]) {
        let (n, c, h, w) = self.check_input(input);
        let (oh, ow) = self.spec.output_hw(h, w);
        let per_sample = c * h * w;
        let out_per_sample = self.spec.out_channels * oh * ow;
        self.input_hw = (h, w);
        self.batch = n;
        for i in 0..n {
            self.refresh_col(
                i,
                &input.as_slice()[i * per_sample..(i + 1) * per_sample],
                h,
                w,
            );
            conv_mix_output(
                &self.weight.value,
                &self.bias.value,
                self.cols[i].as_slice(),
                y,
                &mut out.as_mut_slice()[i * out_per_sample..(i + 1) * out_per_sample],
                &self.spec,
                oh * ow,
            );
        }
    }

    /// Eval-mode forward kernel: lowers into caller-provided scratch and
    /// invalidates the training tape, so a stray `backward` fails loudly
    /// instead of using stale patch matrices from an earlier step.
    fn eval_forward_into(
        &mut self,
        input: &Tensor,
        out: &mut Tensor,
        y: &mut [f32],
        col: &mut [f32],
    ) {
        let (n, c, h, w) = self.check_input(input);
        let (oh, ow) = self.spec.output_hw(h, w);
        let per_sample = c * h * w;
        let out_per_sample = self.spec.out_channels * oh * ow;
        self.batch = 0;
        for i in 0..n {
            im2col_into(
                &input.as_slice()[i * per_sample..(i + 1) * per_sample],
                col,
                &self.spec,
                h,
                w,
            );
            conv_mix_output(
                &self.weight.value,
                &self.bias.value,
                col,
                y,
                &mut out.as_mut_slice()[i * out_per_sample..(i + 1) * out_per_sample],
                &self.spec,
                oh * ow,
            );
        }
    }
}

/// `y = W·col`, then `dst = y + bias` per output channel — the per-sample
/// mixing step shared by all four convolution forward variants.
fn conv_mix_output(
    weight: &Tensor,
    bias: &Tensor,
    col: &[f32],
    y: &mut [f32],
    dst: &mut [f32],
    spec: &Conv2dSpec,
    ohw: usize,
) {
    let (oc, patch) = (spec.out_channels, spec.patch_len());
    gemm_into(weight.as_slice(), col, y, oc, patch, ohw);
    for och in 0..oc {
        let b = bias.as_slice()[och];
        let src = &y[och * ohw..(och + 1) * ohw];
        for (d, &s) in dst[och * ohw..(och + 1) * ohw].iter_mut().zip(src) {
            *d = s + b;
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (n, _, h, w) = self.check_input(input);
        let (oh, ow) = self.spec.output_hw(h, w);
        let (oc, patch) = (self.spec.out_channels, self.spec.patch_len());
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        let mut y = vec![0.0f32; oc * oh * ow];
        match mode {
            Mode::Train => self.train_forward_into(input, &mut out, &mut y),
            Mode::Eval => {
                let mut col = vec![0.0f32; patch * oh * ow];
                self.eval_forward_into(input, &mut out, &mut y, &mut col);
            }
        }
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        let (n, _, h, w) = self.check_input(input);
        let (oh, ow) = self.spec.output_hw(h, w);
        let (oc, patch) = (self.spec.out_channels, self.spec.patch_len());
        let mut out = ws.take_tensor(&[n, oc, oh, ow]);
        let mut y = ws.take(oc * oh * ow);
        match mode {
            Mode::Train => self.train_forward_into(input, &mut out, &mut y),
            Mode::Eval => {
                let mut col = ws.take(patch * oh * ow);
                self.eval_forward_into(input, &mut out, &mut y, &mut col);
                ws.recycle_vec(col);
            }
        }
        ws.recycle_vec(y);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        assert!(
            self.batch > 0 && !self.cols.is_empty(),
            "backward called before a training-mode forward on conv2d (eval invalidates the tape)"
        );
        let (h, w) = self.input_hw;
        let (oh, ow) = self.spec.output_hw(h, w);
        let oc = self.spec.out_channels;
        let c = self.spec.in_channels;
        let n = self.batch;
        let patch = self.spec.patch_len();
        assert_eq!(grad_out.dims(), &[n, oc, oh, ow], "conv2d gradient shape");
        let mut grad_in = ws.take_tensor(&[n, c, h, w]);
        let mut dw = ws.take(oc * patch);
        let mut dcol = ws.take(patch * oh * ow);
        let out_per_sample = oc * oh * ow;
        let in_per_sample = c * h * w;
        for i in 0..n {
            let g = &grad_out.as_slice()[i * out_per_sample..(i + 1) * out_per_sample];
            // dW += g · colᵀ ; db += row sums of g ; dcol = Wᵀ · g — each
            // partial product lands in workspace scratch first, then
            // accumulates (the same two-step arithmetic as the old
            // `add_assign(matmul_*)` form).
            gemm_nt_into(g, self.cols[i].as_slice(), &mut dw, oc, oh * ow, patch);
            for (gw, &d) in self.weight.grad.as_mut_slice().iter_mut().zip(&dw) {
                *gw += d;
            }
            for och in 0..oc {
                let row_sum: f32 = g[och * oh * ow..(och + 1) * oh * ow].iter().sum();
                self.bias.grad.as_mut_slice()[och] += row_sum;
            }
            gemm_tn_into(
                self.weight.value.as_slice(),
                g,
                &mut dcol,
                patch,
                oc,
                oh * ow,
            );
            col2im_into(
                &dcol,
                &mut grad_in.as_mut_slice()[i * in_per_sample..(i + 1) * in_per_sample],
                &self.spec,
                h,
                w,
            );
        }
        ws.recycle_vec(dw);
        ws.recycle_vec(dcol);
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conv2d").field("spec", &self.spec).finish()
    }
}

/// Max pooling over `[N, C, H, W]`.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    spec: Pool2dSpec,
    argmax: Vec<Vec<usize>>,
    input_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square `window` and `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: Pool2dSpec::new(window, stride),
            argmax: Vec::new(),
            input_dims: Vec::new(),
        }
    }
}

impl MaxPool2d {
    /// The shared window scan: pools every sample into `out`, recording
    /// argmax indices into the persistent per-sample buffers (grown once,
    /// reused across steps) when training.
    fn pool_into(&mut self, input: &Tensor, out: &mut Tensor, mode: Mode) {
        assert_eq!(input.rank(), 4, "max_pool2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = self.spec.output_hw(h, w);
        let per_sample = c * h * w;
        let out_per_sample = c * oh * ow;
        if mode == Mode::Train {
            cache_dims(&mut self.input_dims, input.dims());
        } else {
            // Eval invalidates the tape (capacity retained): a stray
            // backward fails loudly instead of using stale state.
            self.input_dims.clear();
        }
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        for i in 0..n {
            let src_seg = &src[i * per_sample..(i + 1) * per_sample];
            let dst_seg = &mut dst[i * out_per_sample..(i + 1) * out_per_sample];
            if mode == Mode::Train {
                if self.argmax.len() <= i {
                    // lint:allow(R1, reason = "argmax tape grows to the batch high-water mark once; steady state resizes in place")
                    self.argmax.push(vec![0; out_per_sample]);
                } else {
                    self.argmax[i].resize(out_per_sample, 0);
                }
                tensor::max_pool2d_into(
                    src_seg,
                    dst_seg,
                    &self.spec,
                    c,
                    h,
                    w,
                    Some(&mut self.argmax[i]),
                );
            } else {
                // Eval never backpropagates: skip the argmax bookkeeping.
                tensor::max_pool2d_into(src_seg, dst_seg, &self.spec, c, h, w, None);
            }
        }
    }

    fn output_dims(&self, input: &Tensor) -> [usize; 4] {
        let (oh, ow) = self.spec.output_hw(input.dims()[2], input.dims()[3]);
        [input.dims()[0], input.dims()[1], oh, ow]
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "max_pool2d expects [N, C, H, W] input");
        let mut out = Tensor::zeros(&self.output_dims(input));
        self.pool_into(input, &mut out, mode);
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        assert_eq!(input.rank(), 4, "max_pool2d expects [N, C, H, W] input");
        let mut out = ws.take_tensor(&self.output_dims(input));
        self.pool_into(input, &mut out, mode);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        assert!(
            !self.argmax.is_empty() && !self.input_dims.is_empty(),
            "backward called before a training-mode forward on max_pool2d (eval invalidates the tape)"
        );
        let n = self.input_dims[0];
        let per_sample: usize = self.input_dims[1..].iter().product();
        let out_per_sample = grad_out.len() / n;
        let mut grad_in = ws.take_tensor(&self.input_dims);
        grad_in.as_mut_slice().fill(0.0);
        for i in 0..n {
            let g = &grad_out.as_slice()[i * out_per_sample..(i + 1) * out_per_sample];
            let gi = &mut grad_in.as_mut_slice()[i * per_sample..(i + 1) * per_sample];
            for (&gv, &idx) in g.iter().zip(&self.argmax[i]) {
                gi[idx] += gv;
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Average pooling over `[N, C, H, W]`.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    spec: Pool2dSpec,
    input_dims: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with a square `window` and `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: Pool2dSpec::new(window, stride),
            input_dims: Vec::new(),
        }
    }
}

impl AvgPool2d {
    /// The shared window scan behind both forward variants.
    fn pool_into(&mut self, input: &Tensor, out: &mut Tensor, mode: Mode) {
        assert_eq!(input.rank(), 4, "avg_pool2d expects [N, C, H, W] input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        if mode == Mode::Train {
            cache_dims(&mut self.input_dims, input.dims());
        } else {
            self.input_dims.clear(); // eval invalidates the tape
        }
        let per_sample = c * h * w;
        let out_per_sample = out.len() / n;
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        for i in 0..n {
            tensor::avg_pool2d_into(
                &src[i * per_sample..(i + 1) * per_sample],
                &mut dst[i * out_per_sample..(i + 1) * out_per_sample],
                &self.spec,
                c,
                h,
                w,
            );
        }
    }

    fn output_dims(&self, input: &Tensor) -> [usize; 4] {
        let (oh, ow) = self.spec.output_hw(input.dims()[2], input.dims()[3]);
        [input.dims()[0], input.dims()[1], oh, ow]
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "avg_pool2d expects [N, C, H, W] input");
        let mut out = Tensor::zeros(&self.output_dims(input));
        self.pool_into(input, &mut out, mode);
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        assert_eq!(input.rank(), 4, "avg_pool2d expects [N, C, H, W] input");
        let mut out = ws.take_tensor(&self.output_dims(input));
        self.pool_into(input, &mut out, mode);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "backward called before forward on avg_pool2d"
        );
        let n = self.input_dims[0];
        let (c, h, w) = (self.input_dims[1], self.input_dims[2], self.input_dims[3]);
        let (oh, ow) = self.spec.output_hw(h, w);
        let per_sample = c * h * w;
        let out_per_sample = c * oh * ow;
        let mut grad_in = ws.take_tensor(&self.input_dims);
        for i in 0..n {
            tensor::avg_pool2d_backward_into(
                &grad_out.as_slice()[i * out_per_sample..(i + 1) * out_per_sample],
                &mut grad_in.as_mut_slice()[i * per_sample..(i + 1) * per_sample],
                &self.spec,
                c,
                h,
                w,
            );
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "avg_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool {
            input_dims: Vec::new(),
        }
    }
}

impl GlobalAvgPool {
    /// The shared channel-mean scan behind both forward variants.
    fn pool_into(&mut self, input: &Tensor, out: &mut Tensor, mode: Mode) {
        assert_eq!(input.rank(), 4, "global_avg_pool expects [N, C, H, W]");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        if mode == Mode::Train {
            cache_dims(&mut self.input_dims, input.dims());
        } else {
            self.input_dims.clear(); // eval invalidates the tape
        }
        let s = (h * w) as f32;
        for i in 0..n {
            for ch in 0..c {
                let start = (i * c + ch) * h * w;
                let sum: f32 = input.as_slice()[start..start + h * w].iter().sum();
                out.as_mut_slice()[i * c + ch] = sum / s;
            }
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "global_avg_pool expects [N, C, H, W]");
        let mut out = Tensor::zeros(&[input.dims()[0], input.dims()[1]]);
        self.pool_into(input, &mut out, mode);
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        assert_eq!(input.rank(), 4, "global_avg_pool expects [N, C, H, W]");
        let mut out = ws.take_tensor(&[input.dims()[0], input.dims()[1]]);
        self.pool_into(input, &mut out, mode);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "backward called before forward on global_avg_pool"
        );
        let (n, c, h, w) = (
            self.input_dims[0],
            self.input_dims[1],
            self.input_dims[2],
            self.input_dims[3],
        );
        // Every element is written (`*v = g`), so the recycled buffer needs
        // no zero-fill.
        let mut grad_in = ws.take_tensor(&self.input_dims);
        let inv = 1.0 / (h * w) as f32;
        for i in 0..n {
            for ch in 0..c {
                let g = grad_out.as_slice()[i * c + ch] * inv;
                let start = (i * c + ch) * h * w;
                for v in &mut grad_in.as_mut_slice()[start..start + h * w] {
                    *v = g;
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Flattens `[N, ...]` to `[N, prod(...)]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            input_dims: Vec::new(),
        }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            cache_dims(&mut self.input_dims, input.dims());
        } else {
            self.input_dims.clear(); // eval invalidates the tape
        }
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        input.reshaped(&[n, rest]).expect("element count preserved")
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Train {
            cache_dims(&mut self.input_dims, input.dims());
        } else {
            self.input_dims.clear(); // eval invalidates the tape
        }
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        ws.take_copy(input, &[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "backward called before forward on flatten"
        );
        grad_out
            .reshaped(&self.input_dims)
            .expect("element count preserved")
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "backward called before forward on flatten"
        );
        ws.take_copy(grad_out, &self.input_dims)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GradCheck;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn conv_output_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 4, 3, 1, 0, &mut rng);
        let y = conv.forward(&Tensor::ones(&[2, 1, 5, 5]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 4, 3, 3]);
    }

    #[test]
    fn conv_identity_kernel_reproduces_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.visit_params(&mut |p| match p.kind {
            ParamKind::Weight => p.value = Tensor::ones(&[1, 1]),
            _ => p.value = Tensor::zeros(&[1]),
        });
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 4, 4], 0.0, 1.0, &mut rng);
        let gc = GradCheck::new().eps(1e-2);
        let ierr = gc.max_input_error(&mut conv, &x);
        assert!(ierr < 5e-2, "input grad error {ierr}");
        let perr = gc.max_param_error(&mut conv, &x);
        assert!(perr < 5e-2, "param grad error {perr}");
    }

    #[test]
    fn strided_conv_gradients() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, &mut rng);
        let gc = GradCheck::new().eps(1e-2);
        assert!(gc.max_input_error(&mut conv, &x) < 5e-2);
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let mut pool = MaxPool2d::new(2, 2);
        let x =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0], &[2, 1, 2, 2]).unwrap();
        // Train mode: backward needs the argmax tape (eval skips it).
        let y = pool.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[4.0, 8.0]);
        let g = pool.backward(&Tensor::from_vec(vec![1.0, 1.0], &[2, 1, 1, 1]).unwrap());
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_gradcheck() {
        let mut pool = AvgPool2d::new(2, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x = Tensor::randn(&[2, 2, 4, 4], 0.0, 1.0, &mut rng);
        assert!(GradCheck::new().max_input_error(&mut pool, &x) < 1e-2);
    }

    #[test]
    fn global_avg_pool_averages_maps() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = gap.forward(&x, Mode::Train); // train: backward needs dims

        assert_eq!(y.dims(), &[1, 1]);
        assert_eq!(y.as_slice(), &[4.0]);
        let g = gap.backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap());
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn flatten_round_trips() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 5]);
        let y = fl.forward(&x, Mode::Train); // train: backward needs dims
        assert_eq!(y.dims(), &[2, 60]);
        let g = fl.backward(&y);
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
    }
}
