//! Trainable parameters and the train/eval mode flag.

use serde::{Deserialize, Serialize};
use tensor::Tensor;

/// Whether a forward pass is part of training (stochastic layers active,
/// batch statistics collected) or evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Training: dropout masks are sampled, batch norm uses batch statistics.
    Train,
    /// Inference: stochastic layers are identity, batch norm uses running
    /// statistics.
    Eval,
}

/// What role a parameter plays; used by optimizers (weight decay skips
/// biases/norm parameters) and by fault-injection reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// Multiplicative weights (dense/conv kernels).
    Weight,
    /// Additive biases.
    Bias,
    /// Normalization gain (`γ` in the paper's Eq. 2).
    NormGain,
    /// Normalization shift (`β` in the paper's Eq. 2).
    NormBias,
}

/// A trainable tensor together with its accumulated gradient.
///
/// # Example
///
/// ```
/// use nn::{Param, ParamKind};
/// use tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2, 2]), ParamKind::Weight);
/// p.grad.add_scaled(&Tensor::ones(&[2, 2]), 0.5);
/// p.zero_grad();
/// assert_eq!(p.grad.sum(), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
    /// Role of this parameter in its layer.
    pub kind: ParamKind,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor, kind: ParamKind) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad, kind }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_same_shape() {
        let p = Param::new(Tensor::ones(&[3, 4]), ParamKind::Weight);
        assert_eq!(p.grad.dims(), &[3, 4]);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[2]), ParamKind::Bias);
        p.grad = Tensor::from_slice(&[1.0, -2.0]);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn mode_is_copy_eq() {
        let m = Mode::Train;
        let n = m;
        assert_eq!(m, n);
        assert_ne!(Mode::Train, Mode::Eval);
    }
}
