//! Finite-difference gradient checking used throughout the test suite,
//! plus the workspace-path equivalence check: `forward_ws`/`backward_ws`
//! must be bit-identical to `forward`/`backward`.

use tensor::Tensor;

use crate::{Layer, Mode, Workspace};

/// Configurable finite-difference gradient checker.
///
/// Checks the layer's input gradient (and optionally parameter gradients)
/// against central differences of the scalar loss `L(x) = Σ forward(x)`.
///
/// Only meaningful for layers that are deterministic in the chosen mode.
/// Since eval-mode forwards skip the activation-cache refresh `backward`
/// depends on, checks should run in `Train` mode (the default); stochastic
/// layers (dropout) need a frozen mask.
///
/// # Example
///
/// ```
/// use nn::{GradCheck, Mode, Relu};
/// use tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let x = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
/// let err = GradCheck::new().mode(Mode::Train).max_input_error(&mut relu, &x);
/// assert!(err < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct GradCheck {
    eps: f32,
    mode: Mode,
}

impl GradCheck {
    /// Creates a checker with step `1e-3` in `Train` mode.
    pub fn new() -> Self {
        GradCheck {
            eps: 1e-3,
            mode: Mode::Train,
        }
    }

    /// Sets the finite-difference step.
    pub fn eps(mut self, eps: f32) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the forward mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Maximum absolute error between the analytic and numeric input
    /// gradient of `Σ forward(x)`.
    pub fn max_input_error(&self, layer: &mut dyn Layer, x: &Tensor) -> f32 {
        let out = layer.forward(x, self.mode);
        let analytic = layer.backward(&Tensor::ones(out.dims()));
        let mut max_err = 0.0f32;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + self.eps;
            let hi = layer.forward(&xp, self.mode).sum();
            xp.as_mut_slice()[i] = orig - self.eps;
            let lo = layer.forward(&xp, self.mode).sum();
            xp.as_mut_slice()[i] = orig;
            let numeric = (hi - lo) / (2.0 * self.eps);
            max_err = max_err.max((numeric - analytic.as_slice()[i]).abs());
        }
        max_err
    }

    /// Maximum absolute error between analytic and numeric gradients of every
    /// trainable parameter of the layer under the loss `Σ forward(x)`.
    pub fn max_param_error(&self, layer: &mut dyn Layer, x: &Tensor) -> f32 {
        layer.zero_grads();
        let out = layer.forward(x, self.mode);
        let _ = layer.backward(&Tensor::ones(out.dims()));
        // Snapshot analytic gradients.
        let mut analytic: Vec<Tensor> = Vec::new();
        layer.visit_params(&mut |p| analytic.push(p.grad.clone()));

        let mut max_err = 0.0f32;
        let n_params = analytic.len();
        #[allow(clippy::needless_range_loop)] // pi also addresses the layer's params
        for pi in 0..n_params {
            let plen = analytic[pi].len();
            for ei in 0..plen {
                let mut orig = 0.0;
                perturb(layer, pi, ei, self.eps, &mut orig);
                let hi = layer.forward(x, self.mode).sum();
                set(layer, pi, ei, orig - self.eps);
                let lo = layer.forward(x, self.mode).sum();
                set(layer, pi, ei, orig);
                let numeric = (hi - lo) / (2.0 * self.eps);
                max_err = max_err.max((numeric - analytic[pi].as_slice()[ei]).abs());
            }
        }
        max_err
    }
}

impl Default for GradCheck {
    fn default() -> Self {
        GradCheck::new()
    }
}

fn perturb(layer: &mut dyn Layer, pi: usize, ei: usize, eps: f32, orig: &mut f32) {
    let mut idx = 0;
    layer.visit_params(&mut |p| {
        if idx == pi {
            *orig = p.value.as_slice()[ei];
            p.value.as_mut_slice()[ei] = *orig + eps;
        }
        idx += 1;
    });
}

fn set(layer: &mut dyn Layer, pi: usize, ei: usize, value: f32) {
    let mut idx = 0;
    layer.visit_params(&mut |p| {
        if idx == pi {
            p.value.as_mut_slice()[ei] = value;
        }
        idx += 1;
    });
}

/// Convenience wrapper: maximum input-gradient error with step `eps` in
/// `Train` mode. See [`GradCheck`].
pub fn numeric_gradient(layer: &mut dyn Layer, x: &Tensor, eps: f32) -> f32 {
    GradCheck::new().eps(eps).max_input_error(layer, x)
}

/// Counts the scalars where the workspace train step diverges bitwise from
/// the allocating one: two replicas of `layer` (cloned via
/// [`Layer::clone_box`], so RNG states match) run
/// `forward`/`backward` and `forward_ws`/`backward_ws` on the same input,
/// and the forward outputs, input gradients, and accumulated parameter
/// gradients are compared bit for bit. Returns the number of differing
/// scalars — `0` is the invariant every layer must uphold.
///
/// Two passes run through one shared [`Workspace`], so the second pass
/// exercises recycled (stale-content) buffers.
pub fn backward_ws_divergence(layer: &dyn Layer, x: &Tensor, mode: Mode) -> usize {
    let mut reference = layer.clone_box();
    let mut candidate = layer.clone_box();
    let mut ws = Workspace::new();
    let mut diverged = 0usize;
    for _ in 0..2 {
        let y_ref = reference.forward(x, mode);
        let g_ref = reference.backward(&Tensor::ones(y_ref.dims()));
        let y_ws = candidate.forward_ws(x, mode, &mut ws);
        let seed = Tensor::ones(y_ws.dims());
        let g_ws = candidate.backward_ws(&seed, &mut ws);
        diverged += mismatches(&y_ref, &y_ws) + mismatches(&g_ref, &g_ws);
        let mut ref_grads: Vec<Tensor> = Vec::new();
        reference.visit_params(&mut |p| ref_grads.push(p.grad.clone()));
        let mut i = 0;
        candidate.visit_params(&mut |p| {
            diverged += mismatches(&ref_grads[i], &p.grad);
            i += 1;
        });
        ws.recycle(y_ws);
        ws.recycle(g_ws);
    }
    diverged
}

/// Number of positions where two tensors differ bitwise (shape mismatch
/// counts every element).
fn mismatches(a: &Tensor, b: &Tensor) -> usize {
    if a.dims() != b.dims() {
        return a.len().max(b.len()).max(1);
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .filter(|(x, y)| x.to_bits() != y.to_bits())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Identity};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_has_exact_gradient() {
        let mut id = Identity::new();
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert!(numeric_gradient(&mut id, &x, 1e-3) < 1e-3);
    }

    #[test]
    fn dense_input_and_param_gradients_check_out() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut fc = Dense::new(3, 4, &mut rng);
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut rng);
        let gc = GradCheck::new();
        assert!(gc.max_input_error(&mut fc, &x) < 1e-2);
        assert!(gc.max_param_error(&mut fc, &x) < 1e-2);
    }
}
