//! The four activation functions ablated in Fig. 2(d): ReLU, leaky ReLU,
//! ELU, and GELU.

use serde::{Deserialize, Serialize};
use tensor::Tensor;

use crate::{
    layer::{cache_into, invalidate_cache},
    Layer, Mode, Workspace,
};

/// Selects one of the paper's four activation functions when building
/// parameterized models (Fig. 2(d) ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Rectified linear unit.
    #[default]
    Relu,
    /// Leaky ReLU with slope 0.01.
    LeakyRelu,
    /// Exponential linear unit with `α = 1`.
    Elu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

impl Activation {
    /// Instantiates the corresponding layer.
    pub fn build(self) -> Box<dyn Layer> {
        match self {
            Activation::Relu => Box::new(Relu::new()),
            Activation::LeakyRelu => Box::new(LeakyRelu::new(0.01)),
            Activation::Elu => Box::new(Elu::new(1.0)),
            Activation::Gelu => Box::new(Gelu::new()),
        }
    }

    /// All four variants, in the order plotted in Fig. 2(d).
    pub fn all() -> [Activation; 4] {
        [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Elu,
            Activation::Gelu,
        ]
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Elu => "elu",
            Activation::Gelu => "gelu",
        };
        write!(f, "{name}")
    }
}

macro_rules! elementwise_activation {
    ($(#[$doc:meta])* $name:ident, $tag:literal, $fwd:expr, $bwd:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            input: Option<Tensor>,
            alpha: f32,
        }

        impl Layer for $name {
            fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
                if mode == Mode::Train {
                    cache_into(&mut self.input, input.as_slice(), input.dims());
                } else {
                    invalidate_cache(&mut self.input);
                }
                let a = self.alpha;
                input.map(|x| ($fwd)(x, a))
            }

            fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
                if mode == Mode::Train {
                    cache_into(&mut self.input, input.as_slice(), input.dims());
                } else {
                    invalidate_cache(&mut self.input);
                }
                let a = self.alpha;
                let mut out = ws.take_tensor(input.dims());
                for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
                    *o = ($fwd)(x, a);
                }
                out
            }

            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                let input = self
                    .input
                    .as_ref()
                    .expect(concat!("backward called before forward on ", $tag));
                assert!(
                    !input.is_empty(),
                    concat!("backward called after an eval-mode forward on ", $tag)
                );
                let a = self.alpha;
                input.zip_map(grad_out, |x, g| g * ($bwd)(x, a))
            }

            fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
                let input = self
                    .input
                    .as_ref()
                    .expect(concat!("backward called before forward on ", $tag));
                assert!(
                    !input.is_empty(),
                    concat!("backward called after an eval-mode forward on ", $tag)
                );
                assert_eq!(input.dims(), grad_out.dims(), concat!($tag, " gradient shape"));
                let a = self.alpha;
                let mut out = ws.take_tensor(input.dims());
                for ((o, &x), &g) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(input.as_slice())
                    .zip(grad_out.as_slice())
                {
                    *o = g * ($bwd)(x, a);
                }
                out
            }

            fn name(&self) -> &'static str {
                $tag
            }

            fn clone_box(&self) -> Box<dyn Layer> {
                Box::new(self.clone())
            }
        }
    };
}

elementwise_activation!(
    /// Rectified linear unit: `max(0, x)`.
    ///
    /// # Example
    ///
    /// ```
    /// use nn::{Layer, Mode, Relu};
    /// use tensor::Tensor;
    ///
    /// let mut relu = Relu::new();
    /// let y = relu.forward(&Tensor::from_slice(&[-1.0, 2.0]), Mode::Eval);
    /// assert_eq!(y.as_slice(), &[0.0, 2.0]);
    /// ```
    Relu,
    "relu",
    |x: f32, _a: f32| x.max(0.0),
    |x: f32, _a: f32| if x > 0.0 { 1.0 } else { 0.0 }
);

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu {
            input: None,
            alpha: 0.0,
        }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Relu::new()
    }
}

elementwise_activation!(
    /// Leaky ReLU: `x` for positive inputs, `αx` otherwise.
    LeakyRelu,
    "leaky_relu",
    |x: f32, a: f32| if x > 0.0 { x } else { a * x },
    |x: f32, a: f32| if x > 0.0 { 1.0 } else { a }
);

impl LeakyRelu {
    /// Creates a leaky ReLU with negative-side slope `alpha`.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu { input: None, alpha }
    }
}

elementwise_activation!(
    /// Exponential linear unit: `x` for positive inputs, `α(eˣ−1)` otherwise.
    Elu,
    "elu",
    |x: f32, a: f32| if x > 0.0 { x } else { a * (x.exp() - 1.0) },
    |x: f32, a: f32| if x > 0.0 { 1.0 } else { a * x.exp() }
);

impl Elu {
    /// Creates an ELU with scale `alpha`.
    pub fn new(alpha: f32) -> Self {
        Elu { input: None, alpha }
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/π)
const GELU_K: f32 = 0.044_715;

fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_K * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    let inner = GELU_C * (x + GELU_K * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * GELU_C * (1.0 + 3.0 * GELU_K * x * x)
}

elementwise_activation!(
    /// Gaussian error linear unit (tanh approximation of Hendrycks & Gimpel).
    Gelu,
    "gelu",
    |x: f32, _a: f32| gelu_fwd(x),
    |x: f32, _a: f32| gelu_bwd(x)
);

impl Gelu {
    /// Creates a GELU layer.
    pub fn new() -> Self {
        Gelu {
            input: None,
            alpha: 0.0,
        }
    }
}

impl Default for Gelu {
    fn default() -> Self {
        Gelu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric_gradient;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let y = relu.forward(&Tensor::from_slice(&[-2.0, 0.0, 3.0]), Mode::Eval);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn leaky_relu_passes_scaled_negatives() {
        let mut l = LeakyRelu::new(0.1);
        let y = l.forward(&Tensor::from_slice(&[-10.0, 10.0]), Mode::Eval);
        assert_eq!(y.as_slice(), &[-1.0, 10.0]);
    }

    #[test]
    fn elu_is_smooth_at_negative() {
        let mut e = Elu::new(1.0);
        let y = e.forward(&Tensor::from_slice(&[-1.0, 1.0]), Mode::Eval);
        assert!((y.as_slice()[0] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 1.0);
    }

    #[test]
    fn gelu_matches_reference_values() {
        // Reference values from the tanh approximation.
        assert!((gelu_fwd(0.0)).abs() < 1e-7);
        assert!((gelu_fwd(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_fwd(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn all_activation_gradients_match_finite_differences() {
        for act in Activation::all() {
            let mut layer = act.build();
            let x = Tensor::from_slice(&[-1.5, -0.3, 0.2, 0.9, 2.0]);
            let max_err = numeric_gradient(layer.as_mut(), &x, 1e-3);
            assert!(
                max_err < 2e-2,
                "{act}: finite-difference mismatch {max_err}"
            );
        }
    }

    #[test]
    fn activation_display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Gelu.to_string(), "gelu");
    }
}
