//! The four feature-normalization schemes ablated in Fig. 2(b): batch,
//! layer, instance, and group normalization.
//!
//! All four share one normalization core: elements are partitioned into
//! statistics groups, normalized to zero mean / unit variance within each
//! group, then transformed by a per-channel affine `γ·x̂ + β` (the paper's
//! Eq. 2). What differs is only the grouping:
//!
//! | norm     | rank-2 `[N, D]` group      | rank-4 `[N, C, H, W]` group |
//! |----------|----------------------------|------------------------------|
//! | batch    | column `d` over all `n`    | channel `c` over `n, h, w`   |
//! | layer    | row `n` over all `d`       | sample `n` over `c, h, w`    |
//! | instance | row `n`                    | `(n, c)` over `h, w`         |
//! | group    | `(n, g)` over `D/G` feats  | `(n, g)` over `C/G · H · W`  |
//!
//! The affine parameters are ordinary [`Param`]s, so ReRAM drift injection
//! perturbs them — which is exactly the mechanism behind the paper's
//! "Achilles heel" finding that normalization *hurts* drift robustness.

use serde::{Deserialize, Serialize};
use tensor::Tensor;

use crate::{Layer, Mode, Param, ParamKind, Workspace};

const EPS: f32 = 1e-5;

/// Selects a normalization scheme when building parameterized models
/// (Fig. 2(b) ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NormKind {
    /// No normalization.
    #[default]
    None,
    /// Batch normalization (Ioffe & Szegedy).
    Batch,
    /// Layer normalization (Ba et al.).
    Layer,
    /// Instance normalization (Ulyanov et al.).
    Instance,
    /// Group normalization (Wu & He) with 4 groups.
    Group,
}

impl NormKind {
    /// Instantiates the corresponding layer for `num_features` channels.
    pub fn build(self, num_features: usize) -> Box<dyn Layer> {
        match self {
            NormKind::None => Box::new(crate::Identity::new()),
            NormKind::Batch => Box::new(BatchNorm::new(num_features)),
            NormKind::Layer => Box::new(LayerNorm::new(num_features)),
            NormKind::Instance => Box::new(InstanceNorm::new(num_features)),
            NormKind::Group => Box::new(GroupNorm::new(num_features, 4.min(num_features))),
        }
    }

    /// All variants in the order plotted in Fig. 2(b).
    pub fn all() -> [NormKind; 5] {
        [
            NormKind::None,
            NormKind::Instance,
            NormKind::Batch,
            NormKind::Group,
            NormKind::Layer,
        ]
    }
}

impl std::fmt::Display for NormKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NormKind::None => "none",
            NormKind::Batch => "batch_norm",
            NormKind::Layer => "layer_norm",
            NormKind::Instance => "instance_norm",
            NormKind::Group => "group_norm",
        };
        write!(f, "{name}")
    }
}

/// Layout information extracted from an input tensor.
#[derive(Debug, Clone, Copy)]
struct NormLayout {
    n: usize,
    c: usize,
    /// Spatial extent per channel (1 for rank-2 inputs).
    s: usize,
}

fn layout(x: &Tensor, num_features: usize) -> NormLayout {
    match x.rank() {
        2 => {
            assert_eq!(
                x.dims()[1],
                num_features,
                "norm feature mismatch: input {} vs {num_features} features",
                x.shape()
            );
            NormLayout {
                n: x.dims()[0],
                c: num_features,
                s: 1,
            }
        }
        4 => {
            assert_eq!(
                x.dims()[1],
                num_features,
                "norm channel mismatch: input {} vs {num_features} channels",
                x.shape()
            );
            NormLayout {
                n: x.dims()[0],
                c: num_features,
                s: x.dims()[2] * x.dims()[3],
            }
        }
        r => panic!("normalization expects rank 2 or 4 input, got rank {r}"),
    }
}

/// Flat index decomposition: `(sample, channel)` of element `i`.
#[inline]
fn coords(i: usize, lay: &NormLayout) -> (usize, usize) {
    let per_sample = lay.c * lay.s;
    let n = i / per_sample;
    let c = (i % per_sample) / lay.s;
    (n, c)
}

/// Shared normalization state cached between forward and backward.
#[derive(Debug, Clone, Default)]
struct NormCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    group_size: f32,
    lay_n: usize,
    lay_c: usize,
    lay_s: usize,
}

/// Normalizes `x` within groups given by `group_of`, returning `(x̂, cache)`.
fn normalize(
    x: &Tensor,
    lay: &NormLayout,
    n_groups: usize,
    group_of: impl Fn(usize, usize) -> usize,
) -> (Tensor, NormCache) {
    let mut sum = vec![0.0f64; n_groups];
    let mut sum_sq = vec![0.0f64; n_groups];
    let mut count = vec![0usize; n_groups];
    for (i, &v) in x.as_slice().iter().enumerate() {
        let (n, c) = coords(i, lay);
        let g = group_of(n, c);
        sum[g] += v as f64;
        sum_sq[g] += (v as f64) * (v as f64);
        count[g] += 1;
    }
    let mut mean = vec![0.0f32; n_groups];
    let mut inv_std = vec![0.0f32; n_groups];
    for g in 0..n_groups {
        let m = sum[g] / count[g].max(1) as f64;
        let var = (sum_sq[g] / count[g].max(1) as f64 - m * m).max(0.0);
        mean[g] = m as f32;
        inv_std[g] = 1.0 / ((var as f32) + EPS).sqrt();
    }
    let mut xhat = x.clone();
    for (i, v) in xhat.as_mut_slice().iter_mut().enumerate() {
        let (n, c) = coords(i, lay);
        let g = group_of(n, c);
        *v = (*v - mean[g]) * inv_std[g];
    }
    let group_size = count.first().copied().unwrap_or(1) as f32;
    (
        xhat.clone(),
        NormCache {
            xhat,
            inv_std,
            group_size,
            lay_n: lay.n,
            lay_c: lay.c,
            lay_s: lay.s,
        },
    )
}

/// Persistent per-layer scratch for the backward group statistics (grown
/// once, reused across steps — part of the allocation-free training path).
#[derive(Debug, Clone, Default)]
struct NormScratch {
    mean_g: Vec<f64>,
    mean_gx: Vec<f64>,
}

impl NormScratch {
    /// Zeroed accumulators of length `n_groups`, reusing prior capacity.
    fn reset(&mut self, n_groups: usize) {
        self.mean_g.clear();
        self.mean_g.resize(n_groups, 0.0);
        self.mean_gx.clear();
        self.mean_gx.resize(n_groups, 0.0);
    }
}

/// Backward pass of group-wise normalization, computed **in place** over
/// `ĝ = g·γ`: on return each element holds
/// `dx_i = inv_std_g · (ĝ_i − mean_G(ĝ) − x̂_i · mean_G(ĝ·x̂))`.
fn normalize_backward(
    ghat: &mut Tensor,
    cache: &NormCache,
    n_groups: usize,
    group_of: impl Fn(usize, usize) -> usize,
    scratch: &mut NormScratch,
) {
    let lay = NormLayout {
        n: cache.lay_n,
        c: cache.lay_c,
        s: cache.lay_s,
    };
    scratch.reset(n_groups);
    for (i, (&g, &xh)) in ghat
        .as_slice()
        .iter()
        .zip(cache.xhat.as_slice())
        .enumerate()
    {
        let (n, c) = coords(i, &lay);
        let grp = group_of(n, c);
        scratch.mean_g[grp] += g as f64;
        scratch.mean_gx[grp] += (g * xh) as f64;
    }
    let m = cache.group_size as f64;
    for grp in 0..n_groups {
        scratch.mean_g[grp] /= m;
        scratch.mean_gx[grp] /= m;
    }
    for (i, v) in ghat.as_mut_slice().iter_mut().enumerate() {
        let (n, c) = coords(i, &lay);
        let grp = group_of(n, c);
        *v = cache.inv_std[grp]
            * (*v
                - scratch.mean_g[grp] as f32
                - cache.xhat.as_slice()[i] * scratch.mean_gx[grp] as f32);
    }
}

/// Applies the per-channel affine `γ·x̂ + β` and accumulates `dγ`, `dβ` on
/// backward.
fn apply_affine(xhat: &Tensor, lay: &NormLayout, gamma: &Tensor, beta: &Tensor) -> Tensor {
    let mut out = xhat.clone();
    for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
        let (_, c) = coords(i, lay);
        *v = gamma.as_slice()[c] * *v + beta.as_slice()[c];
    }
    out
}

macro_rules! norm_common_impl {
    ($ty:ident) => {
        impl $ty {
            /// Number of channels/features this layer normalizes.
            pub fn num_features(&self) -> usize {
                self.num_features
            }
        }
    };
}

/// Batch normalization: statistics per channel across the batch (and spatial
/// dims); running estimates are kept for evaluation mode.
///
/// # Example
///
/// ```
/// use nn::{BatchNorm, Layer, Mode};
/// use tensor::Tensor;
///
/// let mut bn = BatchNorm::new(3);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 5.0, 6.0, 7.0], &[2, 3])?;
/// let y = bn.forward(&x, Mode::Train);
/// // Each column is normalized to zero mean.
/// assert!((y.at(&[0, 0]) + y.at(&[1, 0])).abs() < 1e-4);
/// # Ok::<(), tensor::TensorError>(())
/// ```
#[derive(Clone)]
pub struct BatchNorm {
    num_features: usize,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    cache: Option<NormCache>,
    scratch: NormScratch,
}

impl BatchNorm {
    /// Creates batch normalization over `num_features` channels.
    pub fn new(num_features: usize) -> Self {
        BatchNorm {
            num_features,
            gamma: Param::new(Tensor::ones(&[num_features]), ParamKind::NormGain),
            beta: Param::new(Tensor::zeros(&[num_features]), ParamKind::NormBias),
            running_mean: vec![0.0; num_features],
            running_var: vec![1.0; num_features],
            momentum: 0.1,
            cache: None,
            scratch: NormScratch::default(),
        }
    }

    /// Running mean estimates (testing/inspection hook).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Shared backward kernel: transforms `ĝ` (initially the output
    /// gradient) into the input gradient in place, accumulating `dγ`/`dβ`.
    fn backward_into(&mut self, ghat: &mut Tensor) {
        let cache = self
            .cache
            .as_ref()
            .expect("backward called before training-mode forward on batch_norm");
        let lay = NormLayout {
            n: cache.lay_n,
            c: cache.lay_c,
            s: cache.lay_s,
        };
        for (i, v) in ghat.as_mut_slice().iter_mut().enumerate() {
            let (_, c) = coords(i, &lay);
            self.gamma.grad.as_mut_slice()[c] += *v * cache.xhat.as_slice()[i];
            self.beta.grad.as_mut_slice()[c] += *v;
            *v *= self.gamma.value.as_slice()[c];
        }
        normalize_backward(ghat, cache, lay.c, |_, c| c, &mut self.scratch);
    }
}

norm_common_impl!(BatchNorm);

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let lay = layout(input, self.num_features);
        match mode {
            Mode::Train => {
                let (xhat, cache) = normalize(input, &lay, lay.c, |_, c| c);
                // Recover batch statistics to refresh the running estimates.
                for c in 0..lay.c {
                    let inv = cache.inv_std[c];
                    let var = 1.0 / (inv * inv) - EPS;
                    // mean_c = x - xhat/inv; cheaper: recompute from sums is
                    // gone, so derive from one representative element.
                    self.running_var[c] =
                        (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                }
                // Batch means via direct pass (cheap relative to normalize).
                let mut mean = vec![0.0f32; lay.c];
                let mut cnt = vec![0usize; lay.c];
                for (i, &v) in input.as_slice().iter().enumerate() {
                    let (_, c) = coords(i, &lay);
                    mean[c] += v;
                    cnt[c] += 1;
                }
                for c in 0..lay.c {
                    mean[c] /= cnt[c].max(1) as f32;
                    self.running_mean[c] =
                        (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                }
                let out = apply_affine(&xhat, &lay, &self.gamma.value, &self.beta.value);
                self.cache = Some(cache);
                out
            }
            Mode::Eval => {
                let mut out = input.clone();
                for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
                    let (_, c) = coords(i, &lay);
                    let xh = (*v - self.running_mean[c]) / (self.running_var[c] + EPS).sqrt();
                    *v = self.gamma.value.as_slice()[c] * xh + self.beta.value.as_slice()[c];
                }
                self.cache = None;
                out
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ghat = grad_out.clone();
        self.backward_into(&mut ghat);
        ghat
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut ghat = ws.take_copy(grad_out, grad_out.dims());
        self.backward_into(&mut ghat);
        ghat
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "batch_norm"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for BatchNorm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchNorm")
            .field("num_features", &self.num_features)
            .finish()
    }
}

macro_rules! sample_group_norm {
    ($(#[$doc:meta])* $ty:ident, $tag:literal, $n_groups:expr, $group_of:expr) => {
        $(#[$doc])*
        #[derive(Clone)]
        pub struct $ty {
            num_features: usize,
            groups: usize,
            gamma: Param,
            beta: Param,
            cache: Option<NormCache>,
            scratch: NormScratch,
        }

        norm_common_impl!($ty);

        impl $ty {
            /// Shared backward kernel: transforms `ĝ` (initially the output
            /// gradient) into the input gradient in place, accumulating
            /// `dγ`/`dβ`.
            fn backward_into(&mut self, ghat: &mut Tensor) {
                let cache = self
                    .cache
                    .as_ref()
                    .expect(concat!("backward called before forward on ", $tag));
                let lay = NormLayout {
                    n: cache.lay_n,
                    c: cache.lay_c,
                    s: cache.lay_s,
                };
                let groups = self.groups;
                let n_groups = ($n_groups)(&lay, groups);
                let gof = ($group_of)(lay, groups);
                for (i, v) in ghat.as_mut_slice().iter_mut().enumerate() {
                    let (_, c) = coords(i, &lay);
                    self.gamma.grad.as_mut_slice()[c] += *v * cache.xhat.as_slice()[i];
                    self.beta.grad.as_mut_slice()[c] += *v;
                    *v *= self.gamma.value.as_slice()[c];
                }
                normalize_backward(ghat, cache, n_groups, &gof, &mut self.scratch);
            }
        }

        impl Layer for $ty {
            fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
                let lay = layout(input, self.num_features);
                let groups = self.groups;
                let n_groups = ($n_groups)(&lay, groups);
                let gof = ($group_of)(lay, groups);
                let (xhat, cache) = normalize(input, &lay, n_groups, &gof);
                let out = apply_affine(&xhat, &lay, &self.gamma.value, &self.beta.value);
                self.cache = Some(cache);
                out
            }

            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                let mut ghat = grad_out.clone();
                self.backward_into(&mut ghat);
                ghat
            }

            fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
                let mut ghat = ws.take_copy(grad_out, grad_out.dims());
                self.backward_into(&mut ghat);
                ghat
            }

            fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
                f(&mut self.gamma);
                f(&mut self.beta);
            }

            fn name(&self) -> &'static str {
                $tag
            }

            fn clone_box(&self) -> Box<dyn Layer> {
                Box::new(self.clone())
            }
        }

        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($ty))
                    .field("num_features", &self.num_features)
                    .finish()
            }
        }
    };
}

sample_group_norm!(
    /// Layer normalization: statistics per sample across all features.
    LayerNorm,
    "layer_norm",
    |lay: &NormLayout, _g: usize| lay.n,
    |_lay: NormLayout, _g: usize| move |n: usize, _c: usize| n
);

impl LayerNorm {
    /// Creates layer normalization with per-channel affine parameters.
    pub fn new(num_features: usize) -> Self {
        LayerNorm {
            num_features,
            groups: 1,
            gamma: Param::new(Tensor::ones(&[num_features]), ParamKind::NormGain),
            beta: Param::new(Tensor::zeros(&[num_features]), ParamKind::NormBias),
            cache: None,
            scratch: NormScratch::default(),
        }
    }
}

sample_group_norm!(
    /// Instance normalization: statistics per sample *and* channel (over the
    /// spatial extent; equivalent to layer norm for rank-2 inputs).
    InstanceNorm,
    "instance_norm",
    |lay: &NormLayout, _g: usize| if lay.s == 1 { lay.n } else { lay.n * lay.c },
    |lay: NormLayout, _g: usize| move |n: usize, c: usize| {
        if lay.s == 1 {
            n
        } else {
            n * lay.c + c
        }
    }
);

impl InstanceNorm {
    /// Creates instance normalization with per-channel affine parameters.
    pub fn new(num_features: usize) -> Self {
        InstanceNorm {
            num_features,
            groups: 1,
            gamma: Param::new(Tensor::ones(&[num_features]), ParamKind::NormGain),
            beta: Param::new(Tensor::zeros(&[num_features]), ParamKind::NormBias),
            cache: None,
            scratch: NormScratch::default(),
        }
    }
}

sample_group_norm!(
    /// Group normalization: channels are split into groups; statistics per
    /// sample and group.
    GroupNorm,
    "group_norm",
    |lay: &NormLayout, g: usize| lay.n * g,
    |lay: NormLayout, g: usize| move |n: usize, c: usize| {
        let per_group = lay.c.div_ceil(g);
        n * g + c / per_group
    }
);

impl GroupNorm {
    /// Creates group normalization with `groups` channel groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or exceeds `num_features`.
    pub fn new(num_features: usize, groups: usize) -> Self {
        assert!(
            groups > 0 && groups <= num_features,
            "groups must be in 1..={num_features}, got {groups}"
        );
        GroupNorm {
            num_features,
            groups,
            gamma: Param::new(Tensor::ones(&[num_features]), ParamKind::NormGain),
            beta: Param::new(Tensor::zeros(&[num_features]), ParamKind::NormBias),
            cache: None,
            scratch: NormScratch::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GradCheck;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_input() -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        Tensor::randn(&[4, 6], 1.0, 2.0, &mut rng)
    }

    #[test]
    fn batch_norm_normalizes_columns_in_train() {
        let mut bn = BatchNorm::new(6);
        let y = bn.forward(&sample_input(), Mode::Train);
        for c in 0..6 {
            let col: Vec<f32> = (0..4).map(|n| y.at(&[n, c])).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "col {c} var {var}");
        }
    }

    #[test]
    fn batch_norm_eval_uses_running_stats() {
        let mut bn = BatchNorm::new(2);
        let x = Tensor::from_vec(vec![0.0, 10.0, 2.0, 20.0], &[2, 2]).unwrap();
        for _ in 0..200 {
            let _ = bn.forward(&x, Mode::Train);
        }
        // Running mean converges to the batch mean [1, 15].
        assert!((bn.running_mean()[0] - 1.0).abs() < 0.05);
        assert!((bn.running_mean()[1] - 15.0).abs() < 0.5);
        let y = bn.forward(&x, Mode::Eval);
        // Eval output is deterministic and finite.
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut ln = LayerNorm::new(6);
        let y = ln.forward(&sample_input(), Mode::Train);
        for n in 0..4 {
            let row = y.row(n);
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-4, "row {n} mean {mean}");
        }
    }

    #[test]
    fn group_norm_rank4_groups_channels() {
        let mut gn = GroupNorm::new(4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = Tensor::randn(&[2, 4, 3, 3], 5.0, 3.0, &mut rng);
        let y = gn.forward(&x, Mode::Train);
        // Each (sample, group) block has ~zero mean.
        for n in 0..2 {
            for g in 0..2 {
                let mut sum = 0.0;
                for c in (g * 2)..(g * 2 + 2) {
                    for h in 0..3 {
                        for w in 0..3 {
                            sum += y.at(&[n, c, h, w]);
                        }
                    }
                }
                assert!(
                    sum.abs() / 18.0 < 1e-3,
                    "block ({n},{g}) mean {}",
                    sum / 18.0
                );
            }
        }
    }

    #[test]
    fn instance_norm_rank4_normalizes_each_channel_map() {
        let mut inorm = InstanceNorm::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Tensor::randn(&[2, 3, 4, 4], -2.0, 1.5, &mut rng);
        let y = inorm.forward(&x, Mode::Train);
        for n in 0..2 {
            for c in 0..3 {
                let mut sum = 0.0;
                for h in 0..4 {
                    for w in 0..4 {
                        sum += y.at(&[n, c, h, w]);
                    }
                }
                assert!(sum.abs() / 16.0 < 1e-3);
            }
        }
    }

    #[test]
    fn norm_gradients_match_finite_differences() {
        let gc = GradCheck::new().eps(1e-2);
        let x = sample_input();
        let mut layers: Vec<Box<dyn Layer>> = vec![
            Box::new(BatchNorm::new(6)),
            Box::new(LayerNorm::new(6)),
            Box::new(InstanceNorm::new(6)),
            Box::new(GroupNorm::new(6, 3)),
        ];
        for layer in &mut layers {
            let err = gc.max_input_error(layer.as_mut(), &x);
            assert!(err < 5e-2, "{}: input grad error {err}", layer.name());
            let perr = gc.max_param_error(layer.as_mut(), &x);
            assert!(perr < 5e-2, "{}: param grad error {perr}", layer.name());
        }
    }

    #[test]
    fn norm_kind_builds_expected_layers() {
        assert_eq!(NormKind::None.build(4).name(), "identity");
        assert_eq!(NormKind::Batch.build(4).name(), "batch_norm");
        assert_eq!(NormKind::Group.build(4).name(), "group_norm");
        assert_eq!(NormKind::all().len(), 5);
    }

    #[test]
    #[should_panic(expected = "groups must be in")]
    fn group_norm_rejects_bad_groups() {
        let _ = GroupNorm::new(4, 8);
    }
}
