//! Dropout and alpha dropout — the architectural component the paper finds
//! to dominate weight-drift robustness (Fig. 2(a)) and the sole knob of the
//! BayesFT search space.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tensor::Tensor;

use crate::{Layer, Mode, Workspace};

/// Inverted dropout: during training each element is zeroed with probability
/// `rate` and survivors are scaled by `1/(1−rate)`; evaluation is identity.
///
/// The dropout **rate is mutable at run time** ([`Dropout::set_rate`]) —
/// BayesFT re-uses one trained-architecture skeleton and lets the Bayesian
/// optimizer move the per-layer rates between trials.
///
/// # Example
///
/// ```
/// use nn::{Dropout, Layer, Mode};
/// use tensor::Tensor;
///
/// let mut drop = Dropout::new(0.5, 42);
/// let x = Tensor::ones(&[4, 4]);
/// // Identity at evaluation time:
/// assert_eq!(drop.forward(&x, Mode::Eval).as_slice(), x.as_slice());
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f32,
    rng: ChaCha8Rng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with the given rate and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        Dropout {
            rate,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// Current dropout rate.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Updates the dropout rate (clamped to `[0, 0.95]` for stability — a
    /// rate of 1 would zero the whole layer).
    pub fn set_rate(&mut self, rate: f32) {
        self.rate = rate.clamp(0.0, 0.95);
    }

    /// The mask sampled by the last training-mode forward (testing hook).
    pub fn last_mask(&self) -> Option<&Tensor> {
        self.mask.as_ref()
    }
}

impl Dropout {
    /// Draws a fresh mask into the persistent buffer (grown once, reused
    /// across steps) — the RNG consumption and mask values are identical
    /// for the allocating and workspace paths.
    fn sample_mask(&mut self, dims: &[usize]) {
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mut mask = match self.mask.take() {
            Some(mut m) => {
                m.reuse_as(dims);
                m
            }
            // lint:allow(R1, reason = "cold-start mask fill only; steady-state steps reuse the mask through the Some arm in place")
            None => Tensor::zeros(dims),
        };
        for m in mask.as_mut_slice() {
            *m = if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            };
        }
        self.mask = Some(mask);
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.rate == 0.0 {
            self.mask = None;
            return input.clone();
        }
        self.sample_mask(input.dims());
        input.mul(self.mask.as_ref().expect("mask was just sampled"))
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Eval || self.rate == 0.0 {
            self.mask = None;
            return ws.take_copy(input, input.dims());
        }
        self.sample_mask(input.dims());
        let mask = self.mask.as_ref().expect("mask was just sampled");
        let mut out = ws.take_tensor(input.dims());
        for ((o, &x), &m) in out
            .as_mut_slice()
            .iter_mut()
            .zip(input.as_slice())
            .zip(mask.as_slice())
        {
            *o = x * m;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_out.mul(mask),
            None => grad_out.clone(),
        }
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        match &self.mask {
            Some(mask) => {
                assert_eq!(grad_out.dims(), mask.dims(), "dropout gradient shape");
                let mut out = ws.take_tensor(grad_out.dims());
                for ((o, &g), &m) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(grad_out.as_slice())
                    .zip(mask.as_slice())
                {
                    *o = g * m;
                }
                out
            }
            None => ws.take_copy(grad_out, grad_out.dims()),
        }
    }

    fn visit_dropout(&mut self, f: &mut dyn FnMut(&mut Dropout)) {
        f(self);
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Alpha dropout (Klambauer et al., ref. [9]): drops to the SELU saturation
/// value `α′` and rescales affinely so the input mean and variance are
/// preserved.
///
/// The paper finds its robustness benefit matches plain dropout at higher
/// compute cost (Fig. 2(a)), which is why BayesFT searches plain dropout.
#[derive(Debug, Clone)]
pub struct AlphaDropout {
    rate: f32,
    rng: ChaCha8Rng,
    /// Cached per-element multiplier of the last forward: `a` where kept,
    /// `0` where dropped (the additive part has zero derivative).
    mask: Option<Tensor>,
}

/// SELU saturation constant `α′ = −λα`.
const ALPHA_PRIME: f32 = -1.758_099_3;

impl AlphaDropout {
    /// Creates an alpha-dropout layer with the given rate and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "alpha dropout rate must be in [0, 1), got {rate}"
        );
        AlphaDropout {
            rate,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// Current dropout rate.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Updates the dropout rate (clamped to `[0, 0.95]`).
    pub fn set_rate(&mut self, rate: f32) {
        self.rate = rate.clamp(0.0, 0.95);
    }

    /// Affine correction `(a, b)` such that `a·(x·I + α′·(1−I)) + b`
    /// preserves zero mean / unit variance.
    fn affine(&self) -> (f32, f32) {
        let p = self.rate;
        let q = 1.0 - p;
        let a = (q + ALPHA_PRIME * ALPHA_PRIME * q * p).powf(-0.5);
        let b = -a * p * ALPHA_PRIME;
        (a, b)
    }
}

impl AlphaDropout {
    /// Shared train-mode kernel: fills `out` with the dropped/rescaled
    /// activations while refreshing the persistent multiplier mask in
    /// place — RNG consumption is identical for both forward paths.
    fn apply_into(&mut self, input: &Tensor, out: &mut Tensor) {
        let keep = 1.0 - self.rate;
        let (a, b) = self.affine();
        let mut mult = match self.mask.take() {
            Some(mut m) => {
                m.reuse_as(input.dims());
                m
            }
            // lint:allow(R1, reason = "cold-start mask fill only; steady-state steps reuse the mask through the Some arm in place")
            None => Tensor::zeros(input.dims()),
        };
        for ((o, &x), m) in out
            .as_mut_slice()
            .iter_mut()
            .zip(input.as_slice())
            .zip(mult.as_mut_slice())
        {
            if self.rng.gen::<f32>() < keep {
                *m = a;
                *o = a * x + b;
            } else {
                *m = 0.0;
                *o = a * ALPHA_PRIME + b;
            }
        }
        self.mask = Some(mult);
    }
}

impl Layer for AlphaDropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.rate == 0.0 {
            self.mask = None;
            return input.clone();
        }
        // `apply_into` writes every element, so the buffer needs no copy.
        let mut out = Tensor::zeros(input.dims());
        self.apply_into(input, &mut out);
        out
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Eval || self.rate == 0.0 {
            self.mask = None;
            return ws.take_copy(input, input.dims());
        }
        let mut out = ws.take_tensor(input.dims());
        self.apply_into(input, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_out.mul(mask),
            None => grad_out.clone(),
        }
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        match &self.mask {
            Some(mask) => {
                assert_eq!(grad_out.dims(), mask.dims(), "alpha_dropout gradient shape");
                let mut out = ws.take_tensor(grad_out.dims());
                for ((o, &g), &m) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(grad_out.as_slice())
                    .zip(mask.as_slice())
                {
                    *o = g * m;
                }
                out
            }
            None => ws.take_copy(grad_out, grad_out.dims()),
        }
    }

    fn name(&self) -> &'static str {
        "alpha_dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.7, 0);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, Mode::Eval).as_slice(), x.as_slice());
        let mut ad = AlphaDropout::new(0.7, 0);
        assert_eq!(ad.forward(&x, Mode::Eval).as_slice(), x.as_slice());
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.5, 123);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, Mode::Train);
        // E[y] = 1: half survive with scale 2.
        assert!((y.mean() - 1.0).abs() < 0.1, "mean {}", y.mean());
    }

    #[test]
    fn zero_rate_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 7);
        let x = Tensor::from_slice(&[5.0, -5.0]);
        assert_eq!(d.forward(&x, Mode::Train).as_slice(), x.as_slice());
    }

    #[test]
    fn backward_uses_same_mask_as_forward() {
        let mut d = Dropout::new(0.5, 9);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, Mode::Train);
        let g = d.backward(&Tensor::ones(&[64]));
        // Gradient flows exactly where activations survived.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv, gv);
        }
    }

    #[test]
    fn set_rate_clamps() {
        let mut d = Dropout::new(0.1, 0);
        d.set_rate(2.0);
        assert!((d.rate() - 0.95).abs() < 1e-6);
        d.set_rate(-1.0);
        assert_eq!(d.rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dropout rate must be in [0, 1)")]
    fn invalid_rate_panics() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn alpha_dropout_preserves_moments_approximately() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = Tensor::randn(&[50_000], 0.0, 1.0, &mut rng);
        let mut ad = AlphaDropout::new(0.3, 17);
        let y = ad.forward(&x, Mode::Train);
        let mean = y.mean();
        let var = y.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / y.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn alpha_dropout_dropped_elements_get_constant() {
        let mut ad = AlphaDropout::new(0.5, 11);
        let (a, b) = ad.affine();
        let x = Tensor::ones(&[256]);
        let y = ad.forward(&x, Mode::Train);
        let dropped = a * ALPHA_PRIME + b;
        let kept = a + b;
        for &v in y.as_slice() {
            assert!(
                (v - dropped).abs() < 1e-5 || (v - kept).abs() < 1e-5,
                "unexpected value {v}"
            );
        }
    }
}
