//! The four baseline methods BayesFT is compared against in Fig. 3:
//!
//! * [`train_erm`] — **ERM**: plain empirical-risk minimization.
//! * [`train_awp`] — **AWP** (Wu et al., ref. [18]): adversarial weight
//!   perturbation; each step computes gradients at adversarially shifted
//!   weights.
//! * [`train_ftna`] — **FTNA** (Liu et al., ref. [6]): replaces the softmax
//!   head with an error-correction codebook; prediction = nearest codeword
//!   by Hamming distance.
//! * [`reram_v_accuracy`] — **ReRAM-V** (Chen et al., ref. [5]): per-device
//!   diagnosis and iterative weight re-programming; evaluation models the
//!   drift that re-accumulates after the last calibration pass.
//!
//! All training functions operate on any [`nn::Layer`] network and a
//! [`datasets::ClassificationDataset`], and return a [`TrainedModel`]
//! bundling the network with its output decoder (softmax argmax, or FTNA
//! codebook decoding).
//!
//! # Example
//!
//! ```
//! use baselines::{train_erm, TrainConfig};
//! use datasets::moons;
//! use models::{Mlp, MlpConfig};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let data = moons(200, 0.1, &mut rng);
//! let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
//! let cfg = TrainConfig::fast_test();
//! let mut model = train_erm(net, &data, &cfg);
//! assert!(model.accuracy(&data) > 0.5);
//! ```

mod awp;
mod erm;
mod eval;
mod ftna;
mod reram_v;
mod trained;

pub use awp::{train_awp, AwpConfig};
pub use erm::{train_epochs, train_erm, train_step};
pub use eval::drift_accuracy;
pub use ftna::{train_ftna, Codebook};
pub use reram_v::{reram_v_accuracy, ReRamVConfig};
pub use trained::{OutputDecoder, TrainConfig, TrainedModel};
