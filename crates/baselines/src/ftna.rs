//! FTNA: fault-tolerant neural architecture via error-correction-code
//! outputs (Liu et al., ref. [6]).
//!
//! Instead of class logits, the network emits a binary codeword; each class
//! owns a row of a Hadamard codebook, and prediction picks the row with the
//! smallest Hamming distance to the thresholded output. Code redundancy
//! absorbs some output-layer drift, but — as the paper argues — errors from
//! drifted *earlier* layers still entangle in the code bits.

use datasets::ClassificationDataset;
use nn::{Layer, LossOutput, Mode, Optimizer, Sgd, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tensor::Tensor;

use crate::{trained::reshape_for, OutputDecoder, TrainConfig, TrainedModel};

/// A binary class codebook with guaranteed pairwise Hamming distance
/// (Sylvester–Hadamard construction: distance = bits/2).
#[derive(Debug, Clone)]
pub struct Codebook {
    codes: Vec<Vec<u8>>,
    bits: usize,
}

impl Codebook {
    /// Builds a Hadamard codebook for `classes` classes.
    ///
    /// The codeword length is the smallest power of two `≥ classes + 1`
    /// (row 0 of a Hadamard matrix is constant and therefore skipped), and
    /// at least 16.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn hadamard(classes: usize) -> Self {
        assert!(classes > 0, "codebook needs at least one class");
        let mut bits = 16usize;
        while bits < classes + 1 {
            bits *= 2;
        }
        // Sylvester construction over {0,1} with XOR.
        // H[i][j] = parity of popcount(i & j).
        let codes = (1..=classes)
            .map(|row| {
                (0..bits)
                    .map(|col| ((row & col).count_ones() % 2) as u8)
                    .collect()
            })
            .collect();
        Codebook { codes, bits }
    }

    /// Codeword length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.codes.len()
    }

    /// The codeword of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn code(&self, class: usize) -> &[u8] {
        &self.codes[class]
    }

    /// Minimum pairwise Hamming distance of the codebook.
    pub fn min_distance(&self) -> usize {
        let mut best = self.bits;
        for a in 0..self.codes.len() {
            for b in (a + 1)..self.codes.len() {
                let d = self.codes[a]
                    .iter()
                    .zip(&self.codes[b])
                    .filter(|(x, y)| x != y)
                    .count();
                best = best.min(d);
            }
        }
        best
    }

    /// Decodes one output row (logits) to the nearest class.
    pub fn decode(&self, logits: &[f32]) -> usize {
        let bits: Vec<u8> = logits.iter().map(|&v| u8::from(v > 0.0)).collect();
        let mut best_class = 0;
        let mut best_dist = usize::MAX;
        for (class, code) in self.codes.iter().enumerate() {
            let d = code.iter().zip(&bits).filter(|(x, y)| x != y).count();
            if d < best_dist {
                best_dist = d;
                best_class = class;
            }
        }
        best_class
    }

    /// Decodes every row of an `[N, bits]` output tensor.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the codeword length.
    pub fn decode_batch(&self, out: &Tensor) -> Vec<usize> {
        assert_eq!(out.dims()[1], self.bits, "output width != codeword length");
        (0..out.dims()[0])
            .map(|r| self.decode(out.row(r)))
            .collect()
    }

    /// Binary cross-entropy (with logits) against the class codewords, plus
    /// its gradient: `σ(z) − target`, summed over bits and averaged over the
    /// batch (so gradient magnitudes match softmax cross-entropy and the
    /// same learning rates work for both heads).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn bce_loss(&self, logits: &Tensor, labels: &[usize]) -> LossOutput {
        self.bce_loss_impl(logits.clone(), labels)
    }

    /// [`Codebook::bce_loss`] drawing the gradient buffer from a reusable
    /// [`Workspace`] — bit-identical (one shared kernel), allocation-free
    /// in the steady state once the gradient is recycled after `backward`.
    ///
    /// # Panics
    ///
    /// Panics like [`Codebook::bce_loss`].
    pub fn bce_loss_ws(&self, logits: &Tensor, labels: &[usize], ws: &mut Workspace) -> LossOutput {
        self.bce_loss_impl(ws.take_copy(logits, logits.dims()), labels)
    }

    /// Shared kernel: `grad` arrives holding a copy of the logits and is
    /// transformed in place into the per-bit BCE gradient.
    fn bce_loss_impl(&self, mut grad: Tensor, labels: &[usize]) -> LossOutput {
        let (n, b) = (grad.dims()[0], grad.dims()[1]);
        assert_eq!(b, self.bits, "logit width != codeword length");
        assert_eq!(n, labels.len(), "batch/label mismatch");
        let mut loss = 0.0f32;
        let count = n as f32;
        for (r, &label) in labels.iter().enumerate() {
            let code = self.code(label);
            let row = grad.row_mut(r);
            for (v, &bit) in row.iter_mut().zip(code) {
                let t = bit as f32;
                let p = 1.0 / (1.0 + (-*v).exp());
                loss -= (t * p.max(1e-7).ln() + (1.0 - t) * (1.0 - p).max(1e-7).ln()) / count;
                *v = (p - t) / count;
            }
        }
        LossOutput { loss, grad }
    }
}

/// Trains an FTNA model: `net` must output `codebook.bits()` values; the
/// loss is bitwise BCE against the class codewords.
pub fn train_ftna(
    mut net: Box<dyn Layer>,
    data: &ClassificationDataset,
    cfg: &TrainConfig,
    codebook: Codebook,
) -> TrainedModel {
    let mut opt = Sgd::new(cfg.lr).momentum(cfg.momentum).clip_norm(5.0);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut ws = Workspace::new();
    for _ in 0..cfg.epochs {
        let shuffled = data.shuffled(&mut rng);
        for (x, labels) in shuffled.batches(cfg.batch_size) {
            let x = reshape_for(net.as_mut(), &x);
            let logits = net.forward_ws(x.as_ref(), Mode::Train, &mut ws);
            let out = codebook.bce_loss_ws(&logits, &labels, &mut ws);
            ws.recycle(logits);
            let grad_in = net.backward_ws(&out.grad, &mut ws);
            ws.recycle(grad_in);
            ws.recycle(out.grad);
            opt.step(net.as_mut());
        }
    }
    TrainedModel {
        net,
        decoder: OutputDecoder::Codebook(codebook),
        method: "ftna",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::moons;
    use models::{Mlp, MlpConfig};

    #[test]
    fn hadamard_codebook_has_half_distance() {
        for classes in [2usize, 10, 43] {
            let cb = Codebook::hadamard(classes);
            assert!(cb.bits() > classes);
            assert_eq!(
                cb.min_distance(),
                cb.bits() / 2,
                "{classes}-class codebook distance"
            );
        }
    }

    #[test]
    fn codebook_sizes() {
        assert_eq!(Codebook::hadamard(10).bits(), 16);
        assert_eq!(Codebook::hadamard(43).bits(), 64);
    }

    #[test]
    fn decode_recovers_exact_codewords() {
        let cb = Codebook::hadamard(10);
        for class in 0..10 {
            let logits: Vec<f32> = cb
                .code(class)
                .iter()
                .map(|&b| if b == 1 { 3.0 } else { -3.0 })
                .collect();
            assert_eq!(cb.decode(&logits), class);
        }
    }

    #[test]
    fn decode_tolerates_bit_flips_below_half_distance() {
        let cb = Codebook::hadamard(10);
        let class = 7;
        let mut logits: Vec<f32> = cb
            .code(class)
            .iter()
            .map(|&b| if b == 1 { 3.0 } else { -3.0 })
            .collect();
        // Flip 3 of 16 bits (< d/2 = 4): still decodable.
        for bit in [0, 5, 11] {
            logits[bit] = -logits[bit];
        }
        assert_eq!(cb.decode(&logits), class);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let cb = Codebook::hadamard(3);
        let logits = Tensor::from_vec(
            (0..2 * cb.bits())
                .map(|i| (i as f32 * 0.37).sin())
                .collect(),
            &[2, cb.bits()],
        )
        .unwrap();
        let labels = [0usize, 2];
        let out = cb.bce_loss(&logits, &labels);
        let eps = 1e-3;
        for i in (0..logits.len()).step_by(5) {
            let mut hi = logits.clone();
            hi.as_mut_slice()[i] += eps;
            let mut lo = logits.clone();
            lo.as_mut_slice()[i] -= eps;
            let num =
                (cb.bce_loss(&hi, &labels).loss - cb.bce_loss(&lo, &labels).loss) / (2.0 * eps);
            assert!(
                (num - out.grad.as_slice()[i]).abs() < 1e-3,
                "bit {i}: {num} vs {}",
                out.grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn ftna_learns_moons() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(300, 0.1, &mut rng);
        let cb = Codebook::hadamard(2);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, cb.bits()).hidden(24), &mut rng));
        let cfg = TrainConfig {
            epochs: 40,
            lr: 0.1,
            ..TrainConfig::fast_test()
        };
        let mut model = train_ftna(net, &data, &cfg, cb);
        let acc = model.accuracy(&data);
        assert!(acc > 0.85, "FTNA accuracy on moons: {acc}");
    }
}
