//! Trained-model bundle: a network plus the decoder mapping raw outputs to
//! class predictions.

use datasets::ClassificationDataset;
use metrics::accuracy;
use nn::{Layer, Mode};
use tensor::Tensor;

use crate::Codebook;

/// Shared training hyper-parameters for all baseline methods.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A deliberately tiny budget for unit tests.
    pub fn fast_test() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// How raw network outputs become class predictions.
#[derive(Debug, Clone)]
pub enum OutputDecoder {
    /// Row-wise argmax over class logits (the usual softmax head).
    Softmax,
    /// FTNA decoding: binarize the output bits and pick the codebook row
    /// with minimum Hamming distance.
    Codebook(Codebook),
}

/// A trained network together with its output decoder.
pub struct TrainedModel {
    /// The trained network.
    pub net: Box<dyn Layer>,
    /// Output decoding rule.
    pub decoder: OutputDecoder,
    /// Method label for reports (e.g. `"erm"`, `"awp"`).
    pub method: &'static str,
}

impl TrainedModel {
    /// Predicts class indices for a batch (images or flat rows, matching
    /// what the network was trained on).
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        let out = self.net.forward(x, Mode::Eval);
        match &self.decoder {
            OutputDecoder::Softmax => out.argmax_rows(),
            OutputDecoder::Codebook(cb) => cb.decode_batch(&out),
        }
    }

    /// Top-1 accuracy on a dataset (evaluated in batches of 64).
    pub fn accuracy(&mut self, data: &ClassificationDataset) -> f32 {
        let mut preds = Vec::with_capacity(data.len());
        let mut labels = Vec::with_capacity(data.len());
        for (x, y) in data.batches(64) {
            let x = reshape_for(self.net.as_mut(), &x);
            preds.extend(self.predict(x.as_ref()));
            labels.extend(y);
        }
        accuracy(&preds, &labels)
    }
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("method", &self.method)
            .finish()
    }
}

/// Flattens image batches for MLP-style networks; borrows the input
/// untouched otherwise, so the common no-reshape case costs nothing per
/// batch.
pub(crate) fn reshape_for<'a>(net: &mut dyn Layer, x: &'a Tensor) -> std::borrow::Cow<'a, Tensor> {
    if net.name() == "mlp" && x.rank() > 2 {
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        std::borrow::Cow::Owned(x.reshaped(&[n, rest]).expect("element count preserved"))
    } else {
        std::borrow::Cow::Borrowed(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{Mlp, MlpConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn softmax_decoder_is_argmax() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = TrainedModel {
            net: Box::new(Mlp::new(&MlpConfig::new(2, 3), &mut rng)),
            decoder: OutputDecoder::Softmax,
            method: "erm",
        };
        let preds = model.predict(&Tensor::ones(&[4, 2]));
        assert_eq!(preds.len(), 4);
        assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn reshape_for_flattens_only_for_mlp() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut mlp = Mlp::new(&MlpConfig::new(4, 2), &mut rng);
        let img = Tensor::ones(&[2, 1, 2, 2]);
        assert_eq!(reshape_for(&mut mlp, &img).dims(), &[2, 4]);
        let mut lenet = models::LeNet5::new(1, 14, 2, &mut rng);
        let img14 = Tensor::ones(&[2, 1, 14, 14]);
        assert_eq!(reshape_for(&mut lenet, &img14).dims(), &[2, 1, 14, 14]);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = TrainConfig::default();
        assert!(cfg.epochs > 0 && cfg.batch_size > 0 && cfg.lr > 0.0);
    }
}
