//! AWP: adversarial weight perturbation (Wu et al., ref. [18]).
//!
//! Each step climbs the loss in weight space before computing the update
//! gradient: `δ = γ·‖w‖·g/‖g‖` per parameter tensor, gradients are taken at
//! `w + δ`, and the update is applied to the pristine `w`. The paper
//! observes AWP can *hurt* on hard tasks ("the strong adversarial attack on
//! the neural network parameters caused training failures"), which this
//! implementation reproduces at large `gamma`.

use datasets::ClassificationDataset;
use nn::{softmax_cross_entropy_ws, Layer, Mode, Optimizer, Param, Sgd, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::FaultInjector;

use crate::{trained::reshape_for, OutputDecoder, TrainConfig, TrainedModel};

/// AWP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AwpConfig {
    /// Relative adversarial step size γ (the paper's experiments correspond
    /// to an aggressive setting; 0.01–0.1 is typical in the AWP paper).
    pub gamma: f32,
}

impl Default for AwpConfig {
    fn default() -> Self {
        AwpConfig { gamma: 0.02 }
    }
}

/// Trains `net` with adversarial weight perturbation and bundles it with a
/// softmax decoder.
pub fn train_awp(
    mut net: Box<dyn Layer>,
    data: &ClassificationDataset,
    cfg: &TrainConfig,
    awp: &AwpConfig,
) -> TrainedModel {
    let mut opt = Sgd::new(cfg.lr).momentum(cfg.momentum).clip_norm(5.0);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut ws = Workspace::new();
    for _ in 0..cfg.epochs {
        let shuffled = data.shuffled(&mut rng);
        for (x, labels) in shuffled.batches(cfg.batch_size) {
            let x = reshape_for(net.as_mut(), &x);
            // 1. Gradient at the current weights (workspace train path).
            net.zero_grads();
            let logits = net.forward_ws(x.as_ref(), Mode::Train, &mut ws);
            let out = softmax_cross_entropy_ws(&logits, &labels, &mut ws);
            ws.recycle(logits);
            let grad_in = net.backward_ws(&out.grad, &mut ws);
            ws.recycle(grad_in);
            ws.recycle(out.grad);
            // 2. Adversarial ascent: w ← w + γ‖w‖·g/‖g‖ per tensor.
            let snapshot = FaultInjector::snapshot(net.as_mut());
            net.visit_params(&mut |p| {
                let gnorm = p.grad.norm();
                if gnorm > 1e-12 {
                    let scale = awp.gamma * p.value.norm() / gnorm;
                    let Param { value, grad, .. } = p;
                    value.add_scaled(grad, scale);
                }
            });
            // 3. Gradient at the perturbed weights.
            net.zero_grads();
            let logits = net.forward_ws(x.as_ref(), Mode::Train, &mut ws);
            let out = softmax_cross_entropy_ws(&logits, &labels, &mut ws);
            ws.recycle(logits);
            let grad_in = net.backward_ws(&out.grad, &mut ws);
            ws.recycle(grad_in);
            ws.recycle(out.grad);
            // 4. Restore pristine weights (keeping the robust gradients) and
            //    step.
            let mut grads = Vec::new();
            net.visit_params(&mut |p| grads.push(p.grad.clone()));
            snapshot
                .restore_into(net.as_mut())
                .expect("snapshot was taken from this network");
            let mut i = 0;
            net.visit_params(&mut |p| {
                p.grad = grads[i].clone();
                i += 1;
            });
            opt.step(net.as_mut());
        }
    }
    TrainedModel {
        net,
        decoder: OutputDecoder::Softmax,
        method: "awp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::moons;
    use models::{Mlp, MlpConfig};

    #[test]
    fn awp_learns_moons() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(300, 0.1, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
        let cfg = TrainConfig {
            epochs: 30,
            ..TrainConfig::fast_test()
        };
        let mut model = train_awp(net, &data, &cfg, &AwpConfig::default());
        let acc = model.accuracy(&data);
        assert!(acc > 0.85, "AWP accuracy on moons: {acc}");
    }

    #[test]
    fn weights_are_restored_after_each_step() {
        // With gamma = 0 AWP must behave exactly like ERM.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = moons(100, 0.1, &mut rng);
        let cfg = TrainConfig::fast_test();

        let mut rng_a = ChaCha8Rng::seed_from_u64(42);
        let net_a = Box::new(Mlp::new(&MlpConfig::new(2, 2), &mut rng_a));
        let mut erm = crate::train_erm(net_a, &data, &cfg);

        let mut rng_b = ChaCha8Rng::seed_from_u64(42);
        let net_b = Box::new(Mlp::new(&MlpConfig::new(2, 2), &mut rng_b));
        let mut awp = train_awp(net_b, &data, &cfg, &AwpConfig { gamma: 0.0 });

        // Same initialization, same shuffling seed, no perturbation → same
        // weights.
        let wa = FaultInjector::snapshot(erm.net.as_mut());
        let wb = FaultInjector::snapshot(awp.net.as_mut());
        assert_eq!(wa.scalar_count(), wb.scalar_count());
        let acc_a = erm.accuracy(&data);
        let acc_b = awp.accuracy(&data);
        assert!((acc_a - acc_b).abs() < 1e-6, "{acc_a} vs {acc_b}");
    }

    #[test]
    fn extreme_gamma_degrades_training() {
        // Reproduces the paper's observation that over-strong weight attacks
        // cause training failures.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let data = moons(200, 0.1, &mut rng);
        let cfg = TrainConfig {
            epochs: 15,
            ..TrainConfig::fast_test()
        };
        let net_mild = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
        let mut mild = train_awp(net_mild, &data, &cfg, &AwpConfig { gamma: 0.02 });
        let net_wild = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
        let mut wild = train_awp(net_wild, &data, &cfg, &AwpConfig { gamma: 5.0 });
        assert!(
            mild.accuracy(&data) >= wild.accuracy(&data),
            "extreme AWP should not beat mild AWP"
        );
    }
}
