//! Monte-Carlo drift evaluation of trained models (shared by all methods
//! except ReRAM-V, which has its own calibration protocol).

use datasets::ClassificationDataset;
use reram::{monte_carlo, DriftModel, McStats};

use crate::TrainedModel;

/// Monte-Carlo accuracy of a trained model under a drift model: the
/// estimator of the paper's Eq. (4) with the metric set to test accuracy.
///
/// Weights are restored between trials; the model is unchanged afterwards.
///
/// # Panics
///
/// Panics if `trials == 0`.
///
/// # Example
///
/// ```
/// use baselines::{drift_accuracy, train_erm, TrainConfig};
/// use datasets::moons;
/// use models::{Mlp, MlpConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use reram::LogNormalDrift;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let data = moons(100, 0.1, &mut rng);
/// let net = Box::new(Mlp::new(&MlpConfig::new(2, 2), &mut rng));
/// let mut model = train_erm(net, &data, &TrainConfig::fast_test());
/// let stats = drift_accuracy(&mut model, &data, &LogNormalDrift::new(0.5), 4, 7);
/// assert_eq!(stats.values.len(), 4);
/// ```
pub fn drift_accuracy(
    model: &mut TrainedModel,
    data: &ClassificationDataset,
    drift: &dyn DriftModel,
    trials: usize,
    seed: u64,
) -> McStats {
    // `monte_carlo` drives injection/restore; decoding happens inside the
    // metric closure via the model's decoder.
    let decoder = model.decoder.clone();
    let net = model.net.as_mut();
    monte_carlo(net, drift, trials, seed, |n| {
        let mut preds = Vec::with_capacity(data.len());
        let mut labels = Vec::with_capacity(data.len());
        for (x, y) in data.batches(64) {
            let x = crate::trained::reshape_for(n, &x);
            let out = n.forward(x.as_ref(), nn::Mode::Eval);
            let p = match &decoder {
                crate::OutputDecoder::Softmax => out.argmax_rows(),
                crate::OutputDecoder::Codebook(cb) => cb.decode_batch(&out),
            };
            preds.extend(p);
            labels.extend(y);
        }
        metrics::accuracy(&preds, &labels)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_erm, TrainConfig};
    use datasets::moons;
    use models::{Mlp, MlpConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use reram::LogNormalDrift;

    #[test]
    fn accuracy_degrades_with_sigma() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(300, 0.1, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
        let cfg = TrainConfig {
            epochs: 30,
            ..TrainConfig::fast_test()
        };
        let mut model = train_erm(net, &data, &cfg);
        let low = drift_accuracy(&mut model, &data, &LogNormalDrift::new(0.1), 8, 1);
        let high = drift_accuracy(&mut model, &data, &LogNormalDrift::new(2.5), 8, 1);
        assert!(
            low.mean > high.mean,
            "drift must hurt: σ=0.1 → {}, σ=2.5 → {}",
            low.mean,
            high.mean
        );
    }

    #[test]
    fn sigma_zero_matches_clean_accuracy() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = moons(200, 0.1, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2), &mut rng));
        let mut model = train_erm(net, &data, &TrainConfig::fast_test());
        let clean = model.accuracy(&data);
        let stats = drift_accuracy(&mut model, &data, &LogNormalDrift::new(0.0), 3, 2);
        assert!((stats.mean - clean).abs() < 1e-6);
        assert!(stats.std < 1e-9);
    }
}
