//! ReRAM-V: per-device diagnosis and iterative weight re-programming
//! (Chen et al., ref. [5]).
//!
//! The method assumes each deployed crossbar can be read back, compared
//! against reference weights, and re-programmed. Compensation is imperfect
//! for two reasons the paper highlights: (a) each re-programming pass adds
//! device programming noise (modeled by [`reram::Crossbar`]), and (b)
//! drift *continues after the last calibration* — modeled as a residual
//! log-normal drift with `σ_residual = residual_fraction · σ`. This is why
//! the paper observes "unsatisfactory performance" for ReRAM-V under usage
//! drift: calibration can only roll the device back to the last service
//! visit.

use datasets::ClassificationDataset;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{Crossbar, CrossbarConfig, FaultInjector, LogNormalDrift, McStats};

use crate::TrainedModel;

/// ReRAM-V evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReRamVConfig {
    /// Crossbar device model used for re-programming passes.
    pub device: CrossbarConfig,
    /// Number of diagnose/re-program iterations per calibration.
    pub iterations: usize,
    /// Fraction of the drift magnitude that re-accumulates after the last
    /// calibration (0 = calibration happens at inference time, 1 = never).
    pub residual_fraction: f32,
}

impl Default for ReRamVConfig {
    fn default() -> Self {
        ReRamVConfig {
            device: CrossbarConfig::default(),
            iterations: 3,
            residual_fraction: 0.9,
        }
    }
}

/// Monte-Carlo accuracy of a trained model under ReRAM-V compensated
/// deployment at resistance variation `sigma`.
///
/// Per trial: (1) weights drift with `LogNormal(σ)`; (2) ReRAM-V diagnoses
/// and re-programs every parameter tensor through a [`Crossbar`] for
/// `iterations` passes (each pass limited by programming noise and
/// quantization); (3) residual drift `LogNormal(residual_fraction·σ)`
/// accumulates before evaluation.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn reram_v_accuracy(
    model: &mut TrainedModel,
    data: &ClassificationDataset,
    sigma: f32,
    trials: usize,
    seed: u64,
    cfg: &ReRamVConfig,
) -> McStats {
    assert!(trials > 0, "need at least one trial");
    let reference = FaultInjector::snapshot(model.net.as_mut());
    let mut values = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
        // 1. Field drift.
        FaultInjector::inject(model.net.as_mut(), &LogNormalDrift::new(sigma), &mut rng);
        // 2. Calibration: re-program each tensor toward its reference value.
        //    Iterating keeps the best read-back (later passes may be luckier
        //    with programming noise).
        let mut ref_idx = 0;
        let targets = reference.tensors();
        model.net.visit_params(&mut |p| {
            let target = &targets[ref_idx];
            let mut best = p.value.clone();
            let mut best_err = diff_norm(&best, target);
            for _ in 0..cfg.iterations {
                let xbar = Crossbar::program(target, cfg.device, &mut rng);
                let read = xbar.read(&mut rng);
                let err = diff_norm(&read, target);
                if err < best_err {
                    best_err = err;
                    best = read;
                }
            }
            p.value = best;
            ref_idx += 1;
        });
        // 3. Post-calibration drift.
        FaultInjector::inject(
            model.net.as_mut(),
            &LogNormalDrift::new(sigma * cfg.residual_fraction),
            &mut rng,
        );
        values.push(model.accuracy(data));
        reference
            .restore(model.net.as_mut())
            .expect("snapshot was taken from this network");
    }
    McStats::from_values(values)
}

fn diff_norm(a: &tensor::Tensor, b: &tensor::Tensor) -> f32 {
    a.sub(b).norm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_erm, TrainConfig};
    use datasets::moons;
    use models::{Mlp, MlpConfig};

    fn trained_moons_model() -> (TrainedModel, ClassificationDataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(300, 0.1, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
        let cfg = TrainConfig {
            epochs: 30,
            ..TrainConfig::fast_test()
        };
        (train_erm(net, &data, &cfg), data)
    }

    #[test]
    fn calibration_beats_raw_drift_at_high_sigma() {
        let (mut model, data) = trained_moons_model();
        let sigma = 1.2f32;
        let raw = crate::drift_accuracy(&mut model, &data, &LogNormalDrift::new(sigma), 6, 9);
        let comp = reram_v_accuracy(&mut model, &data, sigma, 6, 9, &ReRamVConfig::default());
        // Compensation sees only residual drift (0.9σ) → should not be worse
        // on average by a wide margin.
        assert!(
            comp.mean >= raw.mean - 0.1,
            "ReRAM-V {} vs raw {}",
            comp.mean,
            raw.mean
        );
    }

    #[test]
    fn weights_are_restored_between_trials() {
        let (mut model, data) = trained_moons_model();
        let before = model.accuracy(&data);
        let _ = reram_v_accuracy(&mut model, &data, 1.0, 3, 1, &ReRamVConfig::default());
        let after = model.accuracy(&data);
        assert!((before - after).abs() < 1e-6, "weights leaked drift");
    }

    #[test]
    fn zero_sigma_calibration_still_pays_programming_noise() {
        let (mut model, data) = trained_moons_model();
        let clean = model.accuracy(&data);
        let comp = reram_v_accuracy(&mut model, &data, 0.0, 3, 2, &ReRamVConfig::default());
        // Device noise alone should cost little on this easy task.
        assert!(comp.mean > clean - 0.2, "{} vs clean {clean}", comp.mean);
    }
}
