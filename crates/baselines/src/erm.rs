//! ERM: plain empirical-risk minimization (the paper's primary baseline).

use datasets::ClassificationDataset;
use nn::{softmax_cross_entropy_ws, Layer, Mode, Optimizer, Sgd, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{trained::reshape_for, OutputDecoder, TrainConfig, TrainedModel};

/// Runs standard mini-batch SGD cross-entropy training in place and returns
/// the mean training loss of each epoch.
///
/// The step runs on the workspace train path — `forward_ws`, a pooled loss
/// gradient, `backward_ws`, and an in-place optimizer — so after the first
/// batch warms the buffer pool, each step performs zero heap allocations
/// (bit-identical to the allocating `forward`/`backward` loop it replaced).
pub fn train_epochs(
    net: &mut dyn Layer,
    data: &ClassificationDataset,
    cfg: &TrainConfig,
) -> Vec<f32> {
    let mut opt = Sgd::new(cfg.lr).momentum(cfg.momentum).clip_norm(5.0);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut ws = Workspace::new();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let shuffled = data.shuffled(&mut rng);
        let mut loss_sum = 0.0;
        let mut batches = 0;
        for (x, labels) in shuffled.batches(cfg.batch_size) {
            let x = reshape_for(net, &x);
            loss_sum += train_step(net, x.as_ref(), &labels, &mut opt, &mut ws);
            batches += 1;
        }
        epoch_losses.push(loss_sum / batches.max(1) as f32);
    }
    epoch_losses
}

/// One allocation-free SGD step on a prepared batch: workspace forward,
/// pooled softmax cross-entropy gradient, workspace backward, in-place
/// optimizer update. Returns the batch loss.
///
/// Exposed so custom training loops (benches, the zero-allocation test
/// harness) share the exact step `train_epochs` runs.
pub fn train_step(
    net: &mut dyn Layer,
    x: &tensor::Tensor,
    labels: &[usize],
    opt: &mut dyn Optimizer,
    ws: &mut Workspace,
) -> f32 {
    let logits = net.forward_ws(x, Mode::Train, ws);
    let out = softmax_cross_entropy_ws(&logits, labels, ws);
    ws.recycle(logits);
    let grad_in = net.backward_ws(&out.grad, ws);
    ws.recycle(out.grad);
    ws.recycle(grad_in);
    opt.step(net);
    out.loss
}

/// Trains `net` with plain ERM and bundles it with a softmax decoder.
///
/// See the crate-level example.
pub fn train_erm(
    mut net: Box<dyn Layer>,
    data: &ClassificationDataset,
    cfg: &TrainConfig,
) -> TrainedModel {
    let _ = train_epochs(net.as_mut(), data, cfg);
    TrainedModel {
        net,
        decoder: OutputDecoder::Softmax,
        method: "erm",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::moons;
    use models::{Mlp, MlpConfig};

    #[test]
    fn erm_learns_moons() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(300, 0.1, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
        let cfg = TrainConfig {
            epochs: 30,
            ..TrainConfig::fast_test()
        };
        let mut model = train_erm(net, &data, &cfg);
        let acc = model.accuracy(&data);
        assert!(acc > 0.9, "ERM accuracy on moons: {acc}");
    }

    #[test]
    fn epoch_losses_decrease() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = moons(200, 0.1, &mut rng);
        let mut net = Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng);
        let losses = train_epochs(&mut net, &data, &TrainConfig::fast_test());
        assert_eq!(losses.len(), 5);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses {losses:?}"
        );
    }
}
