//! Cross-crate integration: sharded campaign execution against the engine
//! and the core report types — the acceptance path of the sharding PR,
//! exercised from outside the `scenarios` crate.

use bayesft::RunReport;
use scenarios::{Campaign, CampaignRunner, ResultStore, Scenario, TaskKind};

fn tiny(name: &str, fault: &str, seed: u64) -> Scenario {
    Scenario::new(name, vec![fault.parse().unwrap()])
        .seed(seed)
        .budgets(2, 2, 1, 1)
        .task(TaskKind::Moons {
            samples: 80,
            noise: 0.1,
        })
}

fn campaign() -> Campaign {
    Campaign::new(
        "xcrate",
        vec![
            tiny("drift", "lognormal:0.4", 1),
            tiny("defect", "stuckat:0.04", 2),
            tiny("mix", "quantize:16+lognormal:0.3", 3),
        ],
    )
}

fn temp_store(tag: &str) -> ResultStore {
    let path =
        std::env::temp_dir().join(format!("bayesft-xcrate-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    ResultStore::open(path)
}

#[test]
fn sharded_campaign_reports_thread_progress_into_the_core_report() {
    let campaign = campaign();
    let report = CampaignRunner::new()
        .shards(2)
        .run_campaign_report(&campaign, None)
        .unwrap();
    assert_eq!((report.completed, report.total), (3, 3));
    assert_eq!(report.shards, 2);
    assert_eq!(report.shard_wall_ms.len(), 2);
    for (i, run) in report.runs.iter().enumerate() {
        let outcome = run.result.as_ref().unwrap();
        let meta = outcome.report.scenario.as_ref().unwrap();
        assert_eq!(meta.position, Some((i, 3)), "{}", run.name);
        assert!(outcome.shard < 2);
        // The engine report round-trips through core JSON — the mechanism
        // store-served resume relies on.
        let replayed = RunReport::from_json(&outcome.report.to_json()).unwrap();
        assert_eq!(replayed, outcome.report);
        assert!(replayed.deterministic_eq(&outcome.report));
    }
}

#[test]
fn store_backed_resume_serves_persisted_scenarios_across_processes() {
    let campaign = campaign();
    let store = temp_store("resume");

    // First "process": persist the full campaign.
    CampaignRunner::new()
        .run_campaign_report(&campaign, Some(&store))
        .unwrap();

    // Second "process": a fresh runner (empty memo cache) resumes from
    // the store and computes nothing.
    let resumed = CampaignRunner::new().shards(3).resume_from(&store).unwrap();
    let report = resumed
        .run_campaign_report(&campaign, Some(&store))
        .unwrap();
    assert_eq!(report.store_served, 3, "everything is served from disk");
    assert_eq!(report.cache_served, 0);

    // The replayed reports are deterministically equal to fresh ones.
    let fresh = CampaignRunner::new().run_campaign(&campaign);
    for (replayed, fresh) in report.runs.iter().zip(&fresh) {
        assert!(replayed
            .result
            .as_ref()
            .unwrap()
            .report
            .deterministic_eq(&fresh.result.as_ref().unwrap().report));
    }
    let _ = std::fs::remove_file(store.path());
}
