//! Cross-crate integration tests of the experiment engine: every
//! `DriftModel` variant and every `SearchSpace` implementation drive one
//! fast-budget search end to end, and parallel Monte-Carlo evaluation is
//! checked to reproduce the serial run exactly.

use std::sync::Arc;

use baselines::TrainConfig;
use bayesft::{
    DriftObjective, DropoutSearchSpace, Engine, ExperimentBuilder, GroupedDropoutSpace,
    SearchSpace, SharedDropoutSpace,
};
use datasets::{moons, ClassificationDataset};
use models::{Mlp, MlpConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{
    BitFlipFault, CompositeFault, DeviceVariation, DriftModel, GaussianAdditive, LevelQuantization,
    LogNormalDrift, StuckAtFault, UniformAdditive, UniformDrift,
};

fn task() -> (ClassificationDataset, ClassificationDataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = moons(160, 0.1, &mut rng);
    data.split(0.8, &mut rng)
}

fn net(depth: usize) -> Box<Mlp> {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    Box::new(Mlp::new(
        &MlpConfig::new(2, 2).hidden(12).depth(depth),
        &mut rng,
    ))
}

fn fast() -> ExperimentBuilder {
    Engine::builder()
        .trials(3)
        .epochs_per_trial(1)
        .final_epochs(1)
        .mc_samples(2)
        .train(TrainConfig {
            epochs: 1,
            ..TrainConfig::fast_test()
        })
}

#[test]
fn engine_runs_under_every_drift_model_variant() {
    let (train, val) = task();
    let models: Vec<(&str, Arc<dyn DriftModel>)> = vec![
        ("log_normal", Arc::new(LogNormalDrift::new(0.5))),
        ("gaussian_additive", Arc::new(GaussianAdditive::new(0.2))),
        ("uniform", Arc::new(UniformDrift::new(0.3))),
        ("uniform_additive", Arc::new(UniformAdditive::new(0.1))),
        ("device_variation", Arc::new(DeviceVariation::new(0.15))),
        ("stuck_at", Arc::new(StuckAtFault::new(0.05, 0.01, 2.0))),
        ("bit_flip", Arc::new(BitFlipFault::new(0.01, 8, 2.0))),
        ("quantize", Arc::new(LevelQuantization::new(16, 2.0))),
        (
            "composite",
            Arc::new(CompositeFault::new(vec![
                Box::new(LevelQuantization::new(32, 2.0)),
                Box::new(LogNormalDrift::new(0.3)),
                Box::new(StuckAtFault::new(0.02, 0.0, 1.0)),
            ])),
        ),
    ];
    for (name, model) in models {
        let objective = DriftObjective::with_models(vec![model], 2);
        let result = fast()
            .objective(objective)
            .seed(3)
            .run(net(3), &train, &val)
            .unwrap_or_else(|e| panic!("{name}: engine failed: {e}"));
        assert_eq!(result.report.trials.len(), 3, "{name}");
        assert!(
            result.report.objective.contains(name),
            "objective label {} should mention {name}",
            result.report.objective
        );
        assert!(
            result.report.trials.iter().all(|t| t.objective.is_finite()),
            "{name}: non-finite objective"
        );
    }
}

#[test]
fn engine_runs_under_every_search_space_impl() {
    let (train, val) = task();
    // 4 weighted layers -> 3 dropout slots.
    let spaces: Vec<(Box<dyn SearchSpace>, &str, usize)> = {
        let mut probe = net(4);
        vec![
            (
                Box::new(DropoutSearchSpace::probe(probe.as_mut())),
                "per_layer",
                3,
            ),
            (
                Box::new(SharedDropoutSpace::probe(probe.as_mut())),
                "shared_rate",
                1,
            ),
            (
                Box::new(GroupedDropoutSpace::chunked(probe.as_mut(), 2).unwrap()),
                "layer_group",
                2,
            ),
        ]
    };
    for (space, label, dim) in spaces {
        let names = space.names();
        let result = fast()
            .space_boxed(space)
            .seed(5)
            .run(net(4), &train, &val)
            .unwrap_or_else(|e| panic!("{label}: engine failed: {e}"));
        assert_eq!(result.report.space, label);
        assert_eq!(result.report.dim, dim, "{label}");
        assert_eq!(names.len(), dim, "{label}");
        assert_eq!(result.report.best_alpha.len(), dim, "{label}");
        assert!(result
            .report
            .best_alpha
            .iter()
            .all(|&a| (0.0..=1.0).contains(&a)));
    }
}

#[test]
fn parallel_and_serial_runs_produce_identical_reports() {
    let (train, val) = task();
    let serial = fast()
        .sigma(0.6)
        .seed(21)
        .parallelism(1)
        .run(net(3), &train, &val)
        .unwrap();
    for workers in [2usize, 4] {
        let parallel = fast()
            .sigma(0.6)
            .seed(21)
            .parallelism(workers)
            .run(net(3), &train, &val)
            .unwrap();
        assert!(
            serial.report.deterministic_eq(&parallel.report),
            "{workers} workers diverged:\nserial   {}\nparallel {}",
            serial.report.to_json_string(),
            parallel.report.to_json_string()
        );
        // Trial histories are compared bit-for-bit through JSON, which by
        // construction has stable key order.
        assert_eq!(
            serial.report.to_json().get("trials"),
            parallel.report.to_json().get("trials"),
        );
        assert_eq!(parallel.report.parallelism, workers);
    }
}

#[test]
fn report_json_round_trips_key_facts() {
    let (train, val) = task();
    let result = fast().seed(9).run(net(3), &train, &val).unwrap();
    let json = result.report.to_json();
    assert_eq!(
        json.get("seed").and_then(serde_json::Value::as_f64),
        Some(9.0)
    );
    assert_eq!(
        json.get("dim").and_then(serde_json::Value::as_f64),
        Some(result.report.dim as f64)
    );
    let trials = json
        .get("trials")
        .and_then(serde_json::Value::as_array)
        .unwrap();
    assert_eq!(trials.len(), result.report.trials.len());
    let pretty = result.report.to_json_string_pretty();
    assert!(pretty.contains("\"timings\""));
}

/// Engine-level golden pin: `DriftObjective::evaluate` on the fused
/// Monte-Carlo path reproduces the per-trial accuracy bits captured from
/// the pre-refactor implementation (separate inject + per-trial restore).
#[test]
fn drift_objective_reproduces_pre_refactor_golden_values() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data = moons(64, 0.15, &mut rng);
    let mut mlp = Mlp::new(&MlpConfig::new(2, 2).hidden(12), &mut rng);
    let obj = DriftObjective::new(0.6, 5);
    let golden: [u32; 5] = [0x3f000000, 0x3f000000, 0x3e400000, 0x3f380000, 0x3ec80000];
    let serial = obj.evaluate(&mut mlp, &data, 123);
    let bits: Vec<u32> = serial.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        bits,
        golden.to_vec(),
        "serial objective diverged from golden"
    );
    for workers in [2usize, 5] {
        let parallel = obj.evaluate_parallel(&mut mlp, &data, 123, workers);
        assert_eq!(parallel.values, serial.values, "{workers} workers");
    }
}
