//! Asserts the training hot path is allocation-free in the steady state:
//! once per-layer caches, the workspace pool, and optimizer state are warm,
//! a full SGD step — workspace forward, pooled loss gradient, workspace
//! backward, in-place optimizer update — performs **zero** heap
//! allocations, and whole epochs allocate nothing beyond that (allocation
//! count independent of epoch count).
//!
//! This binary runs without the libtest harness (`harness = false`):
//! everything executes on the main thread, so the process-wide allocation
//! counters see no concurrent harness activity (libtest's waiting main
//! thread allocates channel wakeups mid-window otherwise).
//!
//! The hot path is *instrumented*: every gemm/im2col/col2im call records
//! into a `telemetry` histogram. Metric registration (the only allocating
//! telemetry step) happens during warm-up, so the zero-allocation
//! assertions double as proof that recording itself — `Instant::now` plus
//! a few relaxed atomics — allocates nothing; the final check confirms
//! the instrumentation was actually live inside the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use baselines::train_step;
use datasets::ped_scenes;
use models::{set_dropout_rates, DetectionLoss, LeNet5, Mlp, MlpConfig, TinyDetector};
use nn::{Layer, Mode, Optimizer, Sgd, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tensor::Tensor;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs() -> (u64, u64) {
    (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst))
}

/// One epoch over prepared batches through the shared workspace train step.
fn epoch(
    net: &mut dyn Layer,
    batches: &[(Tensor, Vec<usize>)],
    opt: &mut dyn Optimizer,
    ws: &mut Workspace,
) -> f32 {
    let mut loss = 0.0;
    for (x, labels) in batches {
        loss += train_step(net, x, labels, opt, ws);
    }
    loss
}

fn main() {
    steady_state_training_step_allocates_nothing();
    println!("train_zero_alloc: ok");
}

fn steady_state_training_step_allocates_nothing() {
    // --- MLP with active dropout: dense, activation, and mask caches. ---
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut mlp = Mlp::new(&MlpConfig::new(16, 4).depth(3).hidden(32), &mut rng);
    set_dropout_rates(&mut mlp, &[0.3, 0.2]);
    // Two batch sizes (full + remainder) exercise the cache-shrink/regrow
    // path: buffers must reach a high-water mark, then stay put.
    let batches = vec![
        (
            Tensor::randn(&[8, 16], 0.0, 1.0, &mut rng),
            (0..8).map(|i| i % 4).collect::<Vec<usize>>(),
        ),
        (
            Tensor::randn(&[5, 16], 0.0, 1.0, &mut rng),
            (0..5).map(|i| i % 4).collect::<Vec<usize>>(),
        ),
    ];
    let mut opt = Sgd::new(0.05).momentum(0.9).clip_norm(5.0);
    let mut ws = Workspace::new();

    // Warm-up: populate per-layer caches, the workspace pool, and the
    // optimizer's velocity buffers.
    let mut acc = 0.0f32;
    for _ in 0..2 {
        acc += epoch(&mut mlp, &batches, &mut opt, &mut ws);
    }

    // Steady state: single steps are allocation-free…
    let (a0, b0) = allocs();
    for (x, labels) in &batches {
        acc += train_step(&mut mlp, x, labels, &mut opt, &mut ws);
    }
    let (a1, b1) = allocs();
    assert!(acc.is_finite());
    assert_eq!(
        a1 - a0,
        0,
        "steady-state MLP train steps allocated {} times ({} bytes)",
        a1 - a0,
        b1 - b0,
    );

    // …and the allocation count is independent of the epoch count: four
    // epochs cost exactly as many allocations as sixteen (namely zero).
    let count_epochs = |epochs: usize, net: &mut Mlp, opt: &mut Sgd, ws: &mut Workspace| -> u64 {
        let (before, _) = allocs();
        for _ in 0..epochs {
            let _ = epoch(net, &batches, opt, ws);
        }
        let (after, _) = allocs();
        after - before
    };
    let four = count_epochs(4, &mut mlp, &mut opt, &mut ws);
    let sixteen = count_epochs(16, &mut mlp, &mut opt, &mut ws);
    assert_eq!(
        four, sixteen,
        "allocations grew with epoch count: {four} for 4 epochs vs {sixteen} for 16"
    );
    assert_eq!(four, 0, "epochs must be allocation-free after warm-up");

    // --- LeNet: conv im2col tape, pooling argmax tape, flatten. ---
    let mut lenet = LeNet5::new(1, 14, 4, &mut rng);
    let img_batches = vec![
        (
            Tensor::randn(&[4, 1, 14, 14], 0.0, 1.0, &mut rng),
            vec![0usize, 1, 2, 3],
        ),
        (
            Tensor::randn(&[2, 1, 14, 14], 0.0, 1.0, &mut rng),
            vec![2usize, 0],
        ),
    ];
    let mut opt = Sgd::new(0.05).momentum(0.9).clip_norm(5.0);
    let mut ws = Workspace::new();
    for _ in 0..2 {
        acc += epoch(&mut lenet, &img_batches, &mut opt, &mut ws);
    }
    let (a0, b0) = allocs();
    for _ in 0..4 {
        acc += epoch(&mut lenet, &img_batches, &mut opt, &mut ws);
    }
    let (a1, b1) = allocs();
    assert!(acc.is_finite());
    assert_eq!(
        a1 - a0,
        0,
        "steady-state LeNet epochs allocated {} times ({} bytes)",
        a1 - a0,
        b1 - b0,
    );

    // --- TinyDetector: pooled detection loss gradient + target scratch. ---
    let scenes = ped_scenes(4, 24, 2, &mut rng);
    let mut det = TinyDetector::new(24, &mut rng);
    set_dropout_rates(&mut det, &[0.2, 0.1]);
    let loss_fn = DetectionLoss::default();
    let mut data = Vec::new();
    for scene in scenes.scenes() {
        data.extend_from_slice(scene.image.as_slice());
    }
    let images = Tensor::from_vec(data, &[4, 3, 24, 24]).unwrap();
    let mut opt = Sgd::new(0.05).momentum(0.9).clip_norm(5.0);
    let mut ws = Workspace::new();
    let det_step = |det: &mut TinyDetector, opt: &mut Sgd, ws: &mut Workspace| -> f32 {
        let raw = det.forward_ws(&images, Mode::Train, ws);
        let (loss, grad) = loss_fn.loss_and_grad_ws(&raw, scenes.scenes(), 24, ws);
        ws.recycle(raw);
        let gin = det.backward_ws(&grad, ws);
        ws.recycle(grad);
        ws.recycle(gin);
        opt.step(det);
        loss
    };
    for _ in 0..2 {
        acc += det_step(&mut det, &mut opt, &mut ws);
    }
    let (a0, b0) = allocs();
    for _ in 0..4 {
        acc += det_step(&mut det, &mut opt, &mut ws);
    }
    let (a1, b1) = allocs();
    assert!(acc.is_finite());
    assert_eq!(
        a1 - a0,
        0,
        "steady-state detector train steps allocated {} times ({} bytes)",
        a1 - a0,
        b1 - b0,
    );

    // --- Telemetry is live AND allocation-free in the steady state. ---
    // The kernels above record into these histograms on every call; if
    // instrumentation were compiled out (or the timers allocated), one of
    // the two assertions below would fail.
    let gemm = telemetry::duration_histogram!("tensor_gemm_seconds");
    let im2col = telemetry::duration_histogram!("tensor_im2col_seconds");
    // Fresh optimizer/workspace for the LeNet (the detector's momentum
    // buffers have detector shapes); warm-up re-fills both.
    let mut opt = Sgd::new(0.05).momentum(0.9).clip_norm(5.0);
    let mut ws = Workspace::new();
    for _ in 0..2 {
        acc += epoch(&mut lenet, &img_batches, &mut opt, &mut ws);
    }
    let gemm_before = gemm.count();
    let im2col_before = im2col.count();
    let (a0, b0) = allocs();
    acc += epoch(&mut lenet, &img_batches, &mut opt, &mut ws);
    let (a1, b1) = allocs();
    assert!(acc.is_finite());
    assert_eq!(
        a1 - a0,
        0,
        "instrumented LeNet epoch allocated {} times ({} bytes)",
        a1 - a0,
        b1 - b0,
    );
    assert!(
        gemm.count() > gemm_before,
        "gemm kernels must record into tensor_gemm_seconds during the measured epoch"
    );
    assert!(
        im2col.count() > im2col_before,
        "conv lowering must record into tensor_im2col_seconds during the measured epoch"
    );
    assert!(gemm.sum() > 0.0 && gemm.sum().is_finite());
}
