//! Bit-identity of the workspace train step (`Layer::forward_ws` in
//! `Mode::Train`, `Layer::backward_ws`, pooled loss gradients, in-place
//! optimizers) against the allocating `forward`/`backward` path, across
//! every layer family and whole-model training loops — plus golden
//! bit-value pins captured from the pre-refactor build, proving the
//! refactor changed buffer provenance and nothing else.

use baselines::{
    train_awp, train_epochs, train_erm, train_ftna, train_step, AwpConfig, Codebook, TrainConfig,
};
use bayesft::Engine;
use models::{LeNet5, Mlp, MlpConfig};
use nn::{
    backward_ws_divergence, softmax_cross_entropy, Activation, Adam, AlphaDropout, AvgPool2d,
    BatchNorm, Conv2d, Dense, Dropout, Flatten, GlobalAvgPool, GroupNorm, Identity, InstanceNorm,
    Layer, LayerNorm, MaxPool2d, Mode, Optimizer, PreActBlock, Relu, Residual, Sequential, Sgd,
    Workspace,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tensor::Tensor;

/// FNV-1a over the bit patterns of every parameter value, in visit order.
fn param_digest(net: &mut dyn Layer) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    net.visit_params(&mut |p| {
        for &v in p.value.as_slice() {
            h ^= v.to_bits() as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    });
    h
}

fn assert_bwd_matches(layer: &dyn Layer, x: &Tensor, what: &str) {
    assert_eq!(
        backward_ws_divergence(layer, x, Mode::Train),
        0,
        "{what}: workspace train step diverged from the allocating path"
    );
}

#[test]
fn dense_and_activations_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let x = Tensor::randn(&[5, 7], 0.0, 1.0, &mut rng);
    assert_bwd_matches(&Dense::new(7, 3, &mut rng), &x, "dense");
    for act in Activation::all() {
        assert_bwd_matches(act.build().as_ref(), &x, "activation");
    }
    // Rank folding: dense accepts [N, ..., in] and folds leading dims.
    let folded = Tensor::randn(&[3, 2, 4], 0.0, 1.0, &mut rng);
    assert_bwd_matches(&Dense::new(4, 2, &mut rng), &folded, "dense rank-fold");
}

#[test]
fn structural_layers_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
    assert_bwd_matches(&Identity::new(), &x, "identity");
    // Stochastic layers: clone_box copies the RNG state, so both replicas
    // draw identical masks.
    assert_bwd_matches(&Dropout::new(0.5, 3), &x, "dropout");
    assert_bwd_matches(&Dropout::new(0.0, 3), &x, "dropout rate 0");
    assert_bwd_matches(&AlphaDropout::new(0.5, 3), &x, "alpha_dropout");
    assert_bwd_matches(&Sequential::empty(), &x, "empty sequential");

    let residual = Residual::new(
        Sequential::new(vec![
            Box::new(Dense::new(4, 4, &mut rng)),
            Box::new(Relu::new()),
        ]),
        None,
    );
    assert_bwd_matches(&residual, &x, "residual identity-shortcut");

    let projected = Residual::new(
        Sequential::new(vec![Box::new(Dense::new(4, 6, &mut rng))]),
        Some(Sequential::new(vec![Box::new(Dense::new(4, 6, &mut rng))])),
    );
    assert_bwd_matches(&projected, &x, "residual projection-shortcut");

    let preact = PreActBlock::new(
        Sequential::new(vec![
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 4, &mut rng)),
        ]),
        None,
    );
    assert_bwd_matches(&preact, &x, "preact block");
}

#[test]
fn conv_and_pooling_layers_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
    assert_bwd_matches(&Conv2d::new(3, 5, 3, 1, 1, &mut rng), &x, "conv 3x3 pad");
    assert_bwd_matches(&Conv2d::new(3, 4, 3, 2, 0, &mut rng), &x, "conv strided");
    assert_bwd_matches(&MaxPool2d::new(2, 2), &x, "max_pool2d");
    assert_bwd_matches(&AvgPool2d::new(2, 2), &x, "avg_pool2d");
    assert_bwd_matches(&GlobalAvgPool::new(), &x, "global_avg_pool");
    assert_bwd_matches(&Flatten::new(), &x, "flatten");
}

#[test]
fn norm_layers_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let x2 = Tensor::randn(&[4, 6], 1.0, 2.0, &mut rng);
    assert_bwd_matches(&BatchNorm::new(6), &x2, "batch_norm rank-2");
    assert_bwd_matches(&LayerNorm::new(6), &x2, "layer_norm rank-2");
    assert_bwd_matches(&InstanceNorm::new(6), &x2, "instance_norm rank-2");
    assert_bwd_matches(&GroupNorm::new(6, 3), &x2, "group_norm rank-2");
    let x4 = Tensor::randn(&[2, 4, 3, 3], -1.0, 1.5, &mut rng);
    assert_bwd_matches(&BatchNorm::new(4), &x4, "batch_norm rank-4");
    assert_bwd_matches(&LayerNorm::new(4), &x4, "layer_norm rank-4");
    assert_bwd_matches(&InstanceNorm::new(4), &x4, "instance_norm rank-4");
    assert_bwd_matches(&GroupNorm::new(4, 2), &x4, "group_norm rank-4");
}

#[test]
fn whole_models_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mlp = Mlp::new(
        &MlpConfig::new(10, 3)
            .depth(4)
            .hidden(16)
            .activation(Activation::Gelu),
        &mut rng,
    );
    let x = Tensor::randn(&[4, 10], 0.0, 1.0, &mut rng);
    assert_bwd_matches(&mlp, &x, "mlp");

    let lenet = LeNet5::new(1, 14, 10, &mut rng);
    let img = Tensor::randn(&[2, 1, 14, 14], 0.0, 1.0, &mut rng);
    assert_bwd_matches(&lenet, &img, "lenet5");
}

/// Legacy-shaped training loop — plain `forward`, allocating loss,
/// `backward`, optimizer step — the reference the workspace step must
/// reproduce bit for bit.
fn legacy_steps(net: &mut dyn Layer, x: &Tensor, labels: &[usize], opt: &mut dyn Optimizer) {
    for _ in 0..10 {
        let logits = net.forward(x, Mode::Train);
        let out = softmax_cross_entropy(&logits, labels);
        let _ = net.backward(&out.grad);
        opt.step(net);
    }
}

fn ws_steps(net: &mut dyn Layer, x: &Tensor, labels: &[usize], opt: &mut dyn Optimizer) {
    let mut ws = Workspace::new();
    for _ in 0..10 {
        let _ = train_step(net, x, labels, opt, &mut ws);
    }
}

/// Ten-step optimizer loops on a fixed batch: the workspace step must match
/// the legacy loop bitwise, and both must match the digests captured from
/// the pre-refactor build for every optimizer family.
#[test]
fn optimizer_loops_are_bit_identical_and_match_pre_refactor_goldens() {
    let x = Tensor::from_vec(
        (0..32).map(|i| ((i as f32) * 0.37).sin()).collect(),
        &[8, 4],
    )
    .unwrap();
    let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
    let mk = || {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        Mlp::new(&MlpConfig::new(4, 3).hidden(6), &mut r)
    };
    type OptCase = (&'static str, fn() -> Box<dyn Optimizer>, u64);
    let cases: [OptCase; 4] = [
        ("sgd", || Box::new(Sgd::new(0.1)), 0xc84f055e68d4cb63),
        (
            "sgd+momentum",
            || Box::new(Sgd::new(0.05).momentum(0.9)),
            0x5de46f1e39e9c9f5,
        ),
        (
            "sgd+wd+clip",
            || {
                Box::new(
                    Sgd::new(0.05)
                        .momentum(0.9)
                        .weight_decay(0.01)
                        .clip_norm(1.0),
                )
            },
            0x041f5e570e6d61da,
        ),
        ("adam", || Box::new(Adam::new(0.05)), 0x2e4fb25b39dd7cb7),
    ];
    for (name, mk_opt, golden) in cases {
        let mut legacy = mk();
        legacy_steps(&mut legacy, &x, &labels, mk_opt().as_mut());
        let mut workspace = mk();
        ws_steps(&mut workspace, &x, &labels, mk_opt().as_mut());
        let legacy_digest = param_digest(&mut legacy);
        assert_eq!(
            legacy_digest,
            param_digest(&mut workspace),
            "{name}: workspace loop diverged from legacy loop"
        );
        assert_eq!(
            legacy_digest, golden,
            "{name}: weights diverged from the pre-refactor build"
        );
    }
}

/// A LeNet conv/pool/flatten chain through three momentum-SGD steps pins
/// the convolution/pooling backward_ws kernels end to end.
#[test]
fn lenet_training_matches_pre_refactor_golden() {
    let run = |workspace: bool| -> u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut lenet = LeNet5::new(1, 14, 4, &mut rng);
        let img = Tensor::randn(&[4, 1, 14, 14], 0.0, 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 3];
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let mut ws = Workspace::new();
        for _ in 0..3 {
            if workspace {
                let _ = train_step(&mut lenet, &img, &labels, &mut opt, &mut ws);
            } else {
                let logits = lenet.forward(&img, Mode::Train);
                let out = softmax_cross_entropy(&logits, &labels);
                let _ = lenet.backward(&out.grad);
                opt.step(&mut lenet);
            }
        }
        param_digest(&mut lenet)
    };
    let legacy = run(false);
    assert_eq!(legacy, run(true), "workspace LeNet training diverged");
    assert_eq!(
        legacy, 0xf56555a00a947833,
        "diverged from pre-refactor build"
    );
}

/// `train_epochs` (now the workspace path, with shuffling and partial
/// batches) reproduces the pre-refactor losses and weights bit for bit.
#[test]
fn train_epochs_matches_pre_refactor_golden() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = datasets::moons(120, 0.1, &mut rng);
    let mut net = Mlp::new(&MlpConfig::new(2, 2).hidden(8), &mut rng);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 16,
        lr: 0.1,
        momentum: 0.9,
        seed: 5,
    };
    let losses = train_epochs(&mut net, &data, &cfg);
    let bits: Vec<u32> = losses.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        bits,
        vec![1059172250, 1053440642, 1047888117],
        "epoch losses diverged from the pre-refactor build"
    );
    assert_eq!(param_digest(&mut net), 0x99ee317a69770da8);
    let mut first = Vec::new();
    net.visit_params(&mut |p| {
        if first.len() < 4 {
            first.extend(
                p.value
                    .as_slice()
                    .iter()
                    .take(4 - first.len())
                    .map(|v| v.to_bits()),
            );
        }
    });
    assert_eq!(first, vec![1051496224, 1033245264, 1025499248, 3190763888]);
}

/// ERM / AWP / FTNA trainers reproduce their pre-refactor weight digests
/// on the workspace path.
#[test]
fn baseline_trainers_match_pre_refactor_goldens() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data = datasets::moons(100, 0.1, &mut rng);
    let cfg = TrainConfig::fast_test();
    let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(8), &mut rng));
    let mut awp = train_awp(net, &data, &cfg, &AwpConfig { gamma: 0.02 });
    assert_eq!(param_digest(awp.net.as_mut()), 0x016b2d22c3b27820, "awp");

    let cb = Codebook::hadamard(2);
    let mut rng2 = ChaCha8Rng::seed_from_u64(7);
    let _ = datasets::moons(100, 0.1, &mut rng2);
    let net = Box::new(Mlp::new(&MlpConfig::new(2, cb.bits()).hidden(8), &mut rng2));
    let mut ftna = train_ftna(net, &data, &cfg, cb);
    assert_eq!(param_digest(ftna.net.as_mut()), 0xdbf9d700b9272b3d, "ftna");

    let mut rng3 = ChaCha8Rng::seed_from_u64(13);
    let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(8), &mut rng3));
    let mut erm = train_erm(net, &data, &cfg);
    assert_eq!(param_digest(erm.net.as_mut()), 0xfd168402fa233fca, "erm");
}

/// The full engine loop (train → Monte-Carlo eval → GP → fine-tune) on the
/// workspace training path reproduces the pre-refactor RunReport and final
/// weights bit for bit, serial and parallel alike.
#[test]
fn engine_run_matches_pre_refactor_golden_serial_and_parallel() {
    let run = |workers: usize| {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = datasets::moons(160, 0.1, &mut rng);
        let (train, val) = data.split(0.8, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(12), &mut rng));
        Engine::builder()
            .trials(3)
            .epochs_per_trial(1)
            .final_epochs(1)
            .mc_samples(2)
            .sigma(0.5)
            .train(TrainConfig::fast_test())
            .seed(19)
            .parallelism(workers)
            .run(net, &train, &val)
            .expect("engine run")
    };
    let serial = run(1);
    assert_eq!(
        serial.report.best_objective.to_bits(),
        0x3febd55560000000,
        "best objective diverged from the pre-refactor build"
    );
    let alpha_bits: Vec<u64> = serial
        .report
        .best_alpha
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(alpha_bits, vec![4600864569083755700, 4586414101153231552]);
    let trial_bits: Vec<u64> = serial
        .report
        .trials
        .iter()
        .map(|t| t.objective.to_bits())
        .collect();
    assert_eq!(
        trial_bits,
        vec![
            4605868869087657984,
            4605915781404819456,
            4606009606576013312
        ]
    );
    let mut serial_model = serial.model;
    assert_eq!(param_digest(serial_model.net.as_mut()), 0xac1559445fe9430b);

    let parallel = run(4);
    assert!(serial.report.deterministic_eq(&parallel.report));
    let mut parallel_model = parallel.model;
    assert_eq!(
        param_digest(parallel_model.net.as_mut()),
        0xac1559445fe9430b,
        "parallel run weights diverged"
    );
}

/// Eval-mode forwards invalidate the gradient tape (capacity retained):
/// a stray `backward` must fail loudly instead of silently
/// backpropagating through the stale activations of an earlier training
/// step.
#[test]
#[should_panic(expected = "eval-mode forward")]
fn dense_backward_after_eval_forward_panics() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut fc = Dense::new(3, 2, &mut rng);
    let x = Tensor::ones(&[2, 3]);
    let _ = fc.forward(&x, Mode::Train);
    let _ = fc.forward(&x, Mode::Eval); // invalidates the tape
    let _ = fc.backward(&Tensor::ones(&[2, 2]));
}

#[test]
#[should_panic(expected = "eval invalidates the tape")]
fn conv_backward_after_eval_forward_panics() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
    let x = Tensor::ones(&[1, 1, 5, 5]);
    let _ = conv.forward(&x, Mode::Train);
    let _ = conv.forward(&x, Mode::Eval); // invalidates the tape
    let _ = conv.backward(&Tensor::ones(&[1, 2, 5, 5]));
}

#[test]
#[should_panic(expected = "eval invalidates the tape")]
fn max_pool_backward_after_eval_forward_panics() {
    let mut pool = MaxPool2d::new(2, 2);
    let x = Tensor::ones(&[1, 1, 4, 4]);
    let _ = pool.forward(&x, Mode::Train);
    let _ = pool.forward(&x, Mode::Eval); // invalidates the tape
    let _ = pool.backward(&Tensor::ones(&[1, 1, 2, 2]));
}
