//! Bit-identity of the workspace-backed eval forward (`Layer::forward_ws`)
//! against the allocating `Layer::forward`, across every layer family and
//! model architecture in the workspace, plus end-to-end use inside the
//! Monte-Carlo drivers.

use models::{LeNet5, Mlp, MlpConfig};
use nn::{
    Activation, AlphaDropout, AvgPool2d, Conv2d, Dense, Dropout, Flatten, GlobalAvgPool, Identity,
    Layer, MaxPool2d, Mode, PreActBlock, Residual, Sequential, Workspace,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tensor::Tensor;

/// Asserts `forward_ws` ≡ `forward` bitwise on `x`, twice (the second pass
/// exercises recycled buffers), and returns the pooled-buffer count so
/// callers can check the pool stabilized.
fn assert_ws_matches(layer: &mut dyn Layer, x: &Tensor) -> usize {
    let reference = layer.forward(x, Mode::Eval);
    let mut ws = Workspace::new();
    for pass in 0..2 {
        let y = layer.forward_ws(x, Mode::Eval, &mut ws);
        assert_eq!(y.dims(), reference.dims(), "{} pass {pass}", layer.name());
        let same = y
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "{} diverged on pass {pass}", layer.name());
        ws.recycle(y);
    }
    ws.pooled_buffers()
}

#[test]
fn dense_and_activations_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let x = Tensor::randn(&[5, 7], 0.0, 1.0, &mut rng);
    let mut dense = Dense::new(7, 3, &mut rng);
    assert_ws_matches(&mut dense, &x);
    for act in Activation::all() {
        let mut layer = act.build();
        assert_ws_matches(layer.as_mut(), &x);
    }
}

#[test]
fn structural_layers_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
    assert_ws_matches(&mut Identity::new(), &x);
    assert_ws_matches(&mut Dropout::new(0.5, 3), &x); // identity in eval
    assert_ws_matches(&mut AlphaDropout::new(0.5, 3), &x);
    assert_ws_matches(&mut Sequential::empty(), &x);

    let mut residual = Residual::new(
        Sequential::new(vec![
            Box::new(Dense::new(4, 4, &mut rng)),
            Box::new(nn::Relu::new()),
        ]),
        None,
    );
    assert_ws_matches(&mut residual, &x);

    let mut projected = Residual::new(
        Sequential::new(vec![Box::new(Dense::new(4, 6, &mut rng))]),
        Some(Sequential::new(vec![Box::new(Dense::new(4, 6, &mut rng))])),
    );
    assert_ws_matches(&mut projected, &x);

    let mut preact = PreActBlock::new(
        Sequential::new(vec![
            Box::new(nn::Relu::new()),
            Box::new(Dense::new(4, 4, &mut rng)),
        ]),
        None,
    );
    assert_ws_matches(&mut preact, &x);
}

#[test]
fn conv_and_pooling_layers_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
    assert_ws_matches(&mut Conv2d::new(3, 5, 3, 1, 1, &mut rng), &x);
    assert_ws_matches(&mut Conv2d::new(3, 4, 3, 2, 0, &mut rng), &x);
    assert_ws_matches(&mut MaxPool2d::new(2, 2), &x);
    assert_ws_matches(&mut AvgPool2d::new(2, 2), &x);
    assert_ws_matches(&mut GlobalAvgPool::new(), &x);
    assert_ws_matches(&mut Flatten::new(), &x);
}

#[test]
fn rank_folding_dense_matches() {
    // Dense accepts [N, ..., in] input, folding leading dims; both paths
    // must fold identically.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let x = Tensor::randn(&[3, 2, 4], 0.0, 1.0, &mut rng);
    let mut dense = Dense::new(4, 2, &mut rng);
    let reference = dense.forward(&x, Mode::Eval);
    assert_eq!(reference.dims(), &[6, 2]);
    let mut ws = Workspace::new();
    let y = dense.forward_ws(&x, Mode::Eval, &mut ws);
    assert_eq!(y.as_slice(), reference.as_slice());
    assert_eq!(y.dims(), reference.dims());
}

#[test]
fn whole_models_match() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let x = Tensor::randn(&[4, 10], 0.0, 1.0, &mut rng);
    let mut mlp = Mlp::new(
        &MlpConfig::new(10, 3)
            .depth(4)
            .hidden(16)
            .activation(Activation::Gelu),
        &mut rng,
    );
    assert_ws_matches(&mut mlp, &x);

    let img = Tensor::randn(&[2, 1, 14, 14], 0.0, 1.0, &mut rng);
    let mut lenet = LeNet5::new(1, 14, 10, &mut rng);
    assert_ws_matches(&mut lenet, &img);
}

#[test]
fn workspace_pool_stabilizes_across_trials() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut mlp = Mlp::new(&MlpConfig::new(6, 2).depth(3).hidden(12), &mut rng);
    let x = Tensor::randn(&[3, 6], 0.0, 1.0, &mut rng);
    let mut ws = Workspace::new();
    let y = mlp.forward_ws(&x, Mode::Eval, &mut ws);
    ws.recycle(y);
    let buffers = ws.pooled_buffers();
    let elements = ws.pooled_elements();
    for _ in 0..10 {
        let y = mlp.forward_ws(&x, Mode::Eval, &mut ws);
        ws.recycle(y);
    }
    assert_eq!(ws.pooled_buffers(), buffers, "pool grew across trials");
    assert_eq!(
        ws.pooled_elements(),
        elements,
        "pool bytes grew across trials"
    );
}

#[test]
fn train_mode_falls_back_and_keeps_backward_working() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let mut net = Sequential::new(vec![
        Box::new(Dense::new(5, 8, &mut rng)),
        Box::new(nn::Relu::new()),
        Box::new(Dropout::new(0.4, 11)),
        Box::new(Dense::new(8, 2, &mut rng)),
    ]);
    let x = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
    // Train through forward_ws (falls back to caching forward internally),
    // then backward must work as usual.
    let mut ws = Workspace::new();
    let y = net.forward_ws(&x, Mode::Train, &mut ws);
    let g = net.backward(&Tensor::ones(y.dims()));
    assert_eq!(g.dims(), x.dims());

    // Train-mode dropout through forward_ws samples a mask exactly like
    // plain forward with the same RNG state.
    let mut a = Dropout::new(0.5, 42);
    let mut b = Dropout::new(0.5, 42);
    let xa = a.forward(&x, Mode::Train);
    let xb = b.forward_ws(&x, Mode::Train, &mut ws);
    assert_eq!(xa.as_slice(), xb.as_slice());
}
