//! Cross-crate integration tests: drift injection across the model zoo,
//! FTNA decoding under drift, crossbar deployment of trained weights, and
//! detector + metrics plumbing.

use datasets::ped_scenes;
use metrics::{mean_average_precision, Detection};
use models::{dropout_count, set_dropout_rates, ModelKind, TinyDetector};
use nn::Mode;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{Crossbar, CrossbarConfig, FaultInjector, LogNormalDrift, StuckAtFault};
use tensor::Tensor;

#[test]
fn drift_injection_round_trips_across_model_zoo() {
    let kinds = [
        ModelKind::Mlp,
        ModelKind::LeNet5,
        ModelKind::AlexNet,
        ModelKind::ResNet18,
        ModelKind::Vgg11,
        ModelKind::PreAct18,
        ModelKind::Stn,
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for kind in kinds {
        let mut net = kind.build(3, 16, 10, &mut rng);
        let x = if kind.wants_flat_input() {
            Tensor::ones(&[1, 3 * 16 * 16])
        } else {
            Tensor::ones(&[1, 3, 16, 16])
        };
        let clean = net.forward(&x, Mode::Eval);
        let snapshot = FaultInjector::snapshot(net.as_mut());
        let mut drift_rng = ChaCha8Rng::seed_from_u64(1);
        FaultInjector::inject(net.as_mut(), &LogNormalDrift::new(0.8), &mut drift_rng);
        let drifted = net.forward(&x, Mode::Eval);
        snapshot.restore(net.as_mut()).unwrap();
        let restored = net.forward(&x, Mode::Eval);
        assert_eq!(
            clean.as_slice(),
            restored.as_slice(),
            "{kind}: restore failed"
        );
        // Drift must actually change outputs for non-trivial σ.
        let delta: f32 = clean
            .as_slice()
            .iter()
            .zip(drifted.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta > 0.0, "{kind}: drift had no effect");
    }
}

#[test]
fn dropout_rates_survive_drift_injection() {
    // Drift perturbs weights, not architecture: rates must be untouched.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut net = ModelKind::Vgg11.build(3, 16, 10, &mut rng);
    let dims = dropout_count(net.as_mut());
    let rates: Vec<f32> = (0..dims).map(|i| 0.1 + 0.05 * i as f32).collect();
    set_dropout_rates(net.as_mut(), &rates);
    let mut drift_rng = ChaCha8Rng::seed_from_u64(3);
    FaultInjector::inject(
        net.as_mut(),
        &StuckAtFault::new(0.2, 0.0, 0.0),
        &mut drift_rng,
    );
    let after = models::dropout_rates(net.as_mut());
    for (a, b) in rates.iter().zip(&after) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn crossbar_deployment_of_trained_network_weights() {
    // Program each tensor of a network onto a crossbar, read back, and
    // check the network still functions (round-trip via device model).
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut net = ModelKind::Mlp.build(1, 14, 10, &mut rng);
    let x = Tensor::ones(&[2, 196]);
    let clean = net.forward(&x, Mode::Eval);
    let mut dev_rng = ChaCha8Rng::seed_from_u64(5);
    net.visit_params(&mut |p| {
        let xbar = Crossbar::program(&p.value, CrossbarConfig::default(), &mut dev_rng);
        p.value = xbar.read(&mut dev_rng);
    });
    let deployed = net.forward(&x, Mode::Eval);
    // 64-level quantization + noise on every one of the 196-input sums:
    // outputs shift but stay finite and the same order of magnitude. The
    // bound is statistical (it depends on the RNG stream), so it is kept
    // loose rather than tuned to one generator.
    for (a, b) in clean.as_slice().iter().zip(deployed.as_slice()) {
        assert!(b.is_finite());
        assert!(
            (a - b).abs() < 2.5,
            "deployment error too large: {a} vs {b}"
        );
    }
}

#[test]
fn ftna_codebook_decodes_under_output_drift() {
    // Flip the FTNA story end-to-end: corrupt code-bit logits with drift
    // noise and confirm decoding still recovers the class for moderate σ.
    let cb = baselines::Codebook::hadamard(10);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let drift = LogNormalDrift::new(0.3);
    let mut correct = 0;
    let total = 200;
    for i in 0..total {
        let class = i % 10;
        let logits: Vec<f32> = cb
            .code(class)
            .iter()
            .map(|&b| {
                let v = if b == 1 { 2.0 } else { -2.0 };
                reram::DriftModel::perturb(&drift, v, &mut rng)
            })
            .collect();
        if cb.decode(&logits) == class {
            correct += 1;
        }
    }
    // Multiplicative drift preserves sign, so decoding should be perfect.
    assert_eq!(correct, total, "sign-preserving drift broke Hamming decode");
}

#[test]
fn detector_to_metrics_pipeline() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data = ped_scenes(4, 24, 2, &mut rng);
    let mut det = TinyDetector::new(24, &mut rng);
    // Build the image batch.
    let mut buf = Vec::new();
    for scene in data.scenes() {
        buf.extend_from_slice(scene.image.as_slice());
    }
    let images = Tensor::from_vec(buf, &[4, 3, 24, 24]).unwrap();
    let per_image = det.detect(&images, 0.1);
    let mut flat = Vec::new();
    for (image, dets) in per_image.into_iter().enumerate() {
        for (bbox, score) in dets {
            flat.push(Detection { image, bbox, score });
        }
    }
    let gt: Vec<_> = data.scenes().iter().map(|s| s.boxes.clone()).collect();
    let map = mean_average_precision(&flat, &gt);
    assert!((0.0..=1.0).contains(&map), "mAP out of range: {map}");
}

#[test]
fn objective_matches_manual_monte_carlo() {
    // bayesft::DriftObjective must agree with a hand-rolled MC loop using
    // the same seeds.
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let data = datasets::digits(5, &mut rng);
    let mut net = ModelKind::Mlp.build(1, 14, 10, &mut rng);
    let obj = bayesft::DriftObjective::new(0.5, 4);
    let a = obj.evaluate(net.as_mut(), &data, 99);
    let b = obj.evaluate(net.as_mut(), &data, 99);
    assert_eq!(a.values, b.values, "objective must be seed-deterministic");
}
