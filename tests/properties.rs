//! Cross-crate property-based tests on the workspace's core invariants.

use models::{dropout_count, set_dropout_rates, Mlp, MlpConfig};
use nn::{Layer, Mode};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{DriftModel, FaultInjector, LogNormalDrift, StuckAtFault, UniformDrift};
use tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Log-normal drift preserves weight sign for any σ and weight value.
    #[test]
    fn lognormal_drift_preserves_sign(sigma in 0.0f32..3.0, w in -10.0f32..10.0, seed in 0u64..1000) {
        let drift = LogNormalDrift::new(sigma);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = drift.perturb(w, &mut rng);
        prop_assert!(out.signum() == w.signum() || w == 0.0, "{w} -> {out}");
    }

    /// σ = 0 is exactly the identity for the paper's drift model.
    #[test]
    fn zero_sigma_is_identity(w in -100.0f32..100.0, seed in 0u64..100) {
        let drift = LogNormalDrift::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        prop_assert_eq!(drift.perturb(w, &mut rng), w);
    }

    /// Uniform drift is bounded: |θ' − θ| ≤ δ|θ|.
    #[test]
    fn uniform_drift_is_bounded(delta in 0.0f32..1.0, w in -5.0f32..5.0, seed in 0u64..100) {
        let drift = UniformDrift::new(delta);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = drift.perturb(w, &mut rng);
        prop_assert!((out - w).abs() <= delta * w.abs() + 1e-5);
    }

    /// Stuck-at outputs are always one of {0, ±max, input}.
    #[test]
    fn stuck_at_outputs_are_from_valid_set(w in -3.0f32..3.0, seed in 0u64..200) {
        let drift = StuckAtFault::new(0.3, 0.3, 1.5);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = drift.perturb(w, &mut rng);
        prop_assert!(out == 0.0 || out == w || out.abs() == 1.5, "{out}");
    }

    /// Snapshot/restore is exact for arbitrary drift in between.
    #[test]
    fn snapshot_restore_is_exact(sigma in 0.0f32..2.0, seed in 0u64..50) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = Mlp::new(&MlpConfig::new(6, 3).hidden(8), &mut rng);
        let x = Tensor::ones(&[1, 6]);
        let before = net.forward(&x, Mode::Eval);
        let snap = FaultInjector::snapshot(&mut net);
        FaultInjector::inject(&mut net, &LogNormalDrift::new(sigma), &mut rng);
        snap.restore(&mut net).unwrap();
        let after = net.forward(&x, Mode::Eval);
        prop_assert_eq!(before.as_slice(), after.as_slice());
    }

    /// Dropout-rate application clamps into [0, 0.95] for any input rates.
    #[test]
    fn dropout_rates_always_clamped(rates in proptest::collection::vec(-2.0f32..3.0, 2)) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Mlp::new(&MlpConfig::new(4, 2), &mut rng);
        set_dropout_rates(&mut net, &rates);
        for r in models::dropout_rates(&mut net) {
            prop_assert!((0.0..=0.95).contains(&r), "rate {r}");
        }
    }

    /// The search space dimension equals the number of hidden layers for
    /// an MLP of any depth.
    #[test]
    fn search_dimension_tracks_depth(depth in 2usize..8) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Mlp::new(&MlpConfig::new(4, 2).depth(depth), &mut rng);
        prop_assert_eq!(dropout_count(&mut net), depth - 1);
    }

    /// GP posterior variance is non-negative and bounded by the prior at
    /// any query point, for any observation set.
    #[test]
    fn gp_variance_bounds(
        ys in proptest::collection::vec(-2.0f64..2.0, 2..6),
        q in 0.0f64..1.0
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64 / ys.len() as f64]).collect();
        let mut gp = bayesopt::GaussianProcess::new(
            bayesopt::SquaredExponential::isotropic(1.0, 0.2), 1e-6);
        gp.fit(xs, ys).unwrap();
        let p = gp.posterior(&[q]).unwrap();
        prop_assert!(p.variance >= 0.0);
        prop_assert!(p.variance <= 1.0 + 1e-6, "variance {} above prior", p.variance);
    }

    /// Codebook decoding is the identity on uncorrupted codewords for any
    /// class count.
    #[test]
    fn codebook_decode_identity(classes in 2usize..30) {
        let cb = baselines::Codebook::hadamard(classes);
        for class in 0..classes {
            let logits: Vec<f32> = cb.code(class).iter()
                .map(|&b| if b == 1 { 1.0 } else { -1.0 }).collect();
            prop_assert_eq!(cb.decode(&logits), class);
        }
    }

    /// IoU is symmetric, bounded, and 1 exactly on self.
    #[test]
    fn iou_properties(
        x0 in 0.0f32..20.0, y0 in 0.0f32..20.0, w in 1.0f32..10.0, h in 1.0f32..10.0,
        dx in -5.0f32..5.0, dy in -5.0f32..5.0
    ) {
        let a = datasets::BBox::new(x0, y0, x0 + w, y0 + h);
        let b = datasets::BBox::new(x0 + dx, y0 + dy, x0 + dx + w, y0 + dy + h);
        let iou = a.iou(&b);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&iou));
        prop_assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-6);
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    }

    /// Softmax cross-entropy of any logits is at least ln of the inverse
    /// true-class probability bound, and its gradient rows sum to zero.
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        vals in proptest::collection::vec(-5.0f32..5.0, 6)
    ) {
        let logits = Tensor::from_vec(vals, &[2, 3]).unwrap();
        let out = nn::softmax_cross_entropy(&logits, &[0, 2]);
        prop_assert!(out.loss >= 0.0);
        for r in 0..2 {
            let s: f32 = out.grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// The fused `inject_from` equals `restore_into` + `inject` bitwise
    /// for random network shapes, drift magnitudes, and dirty states.
    #[test]
    fn inject_from_equals_restore_then_inject(
        input_dim in 1usize..6,
        hidden in 1usize..9,
        depth in 2usize..5,
        sigma in 0.0f32..2.0,
        net_seed in 0u64..500,
        drift_seed in 0u64..500,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(net_seed);
        let cfg = MlpConfig::new(input_dim, 2).depth(depth).hidden(hidden);
        let mut fused = Mlp::new(&cfg, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(net_seed);
        let mut unfused = Mlp::new(&cfg, &mut rng);

        let snap_f = FaultInjector::snapshot(&mut fused);
        let snap_u = FaultInjector::snapshot(&mut unfused);
        // Dirty both replicas identically, as a previous trial would.
        let mut d = ChaCha8Rng::seed_from_u64(drift_seed ^ 0xABCD);
        FaultInjector::inject(&mut fused, &UniformDrift::new(0.7), &mut d);
        let mut d = ChaCha8Rng::seed_from_u64(drift_seed ^ 0xABCD);
        FaultInjector::inject(&mut unfused, &UniformDrift::new(0.7), &mut d);

        let model = LogNormalDrift::new(sigma);
        let mut r = ChaCha8Rng::seed_from_u64(drift_seed);
        FaultInjector::inject_from(&snap_f, &mut fused, &model, &mut r).unwrap();
        let mut r = ChaCha8Rng::seed_from_u64(drift_seed);
        snap_u.restore_into(&mut unfused).unwrap();
        FaultInjector::inject(&mut unfused, &model, &mut r);

        let a = FaultInjector::snapshot(&mut fused);
        let b = FaultInjector::snapshot(&mut unfused);
        for (ta, tb) in a.tensors().iter().zip(b.tensors()) {
            prop_assert_eq!(ta.as_slice(), tb.as_slice());
        }
    }

    /// Workspace-backed eval forward is bit-identical to the allocating
    /// forward for arbitrary MLP geometry and inputs.
    #[test]
    fn forward_ws_matches_forward(
        input_dim in 1usize..6,
        hidden in 1usize..9,
        depth in 2usize..5,
        batch in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = Mlp::new(&MlpConfig::new(input_dim, 3).depth(depth).hidden(hidden), &mut rng);
        let x = Tensor::randn(&[batch, input_dim], 0.0, 1.0, &mut rng);
        let reference = net.forward(&x, Mode::Eval);
        let mut ws = nn::Workspace::new();
        for _ in 0..2 { // second pass runs on recycled buffers
            let y = net.forward_ws(&x, Mode::Eval, &mut ws);
            prop_assert_eq!(y.as_slice(), reference.as_slice());
            prop_assert_eq!(y.dims(), reference.dims());
            ws.recycle(y);
        }
    }
}
