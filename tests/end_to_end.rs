//! End-to-end integration tests spanning the whole workspace: data →
//! model → training → drift injection → evaluation → BayesFT search.

use baselines::{
    drift_accuracy, reram_v_accuracy, train_awp, train_erm, train_ftna, AwpConfig, Codebook,
    ReRamVConfig, TrainConfig,
};
use bayesft::{accuracy_vs_sigma, BayesFt, BayesFtConfig, SIGMA_GRID};
use datasets::{digits, moons};
use models::{LeNet5, Mlp, MlpConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::LogNormalDrift;

fn quick_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 8,
        batch_size: 32,
        lr: 0.1,
        momentum: 0.9,
        seed: 0,
    }
}

#[test]
fn every_baseline_trains_and_evaluates_on_digits() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = digits(12, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let cfg = quick_cfg();
    let chance = 0.1f32;

    let erm_net = Box::new(Mlp::new(&MlpConfig::new(196, 10).hidden(48), &mut rng));
    let mut erm = train_erm(erm_net, &train, &cfg);
    assert!(
        erm.accuracy(&test) > chance + 0.2,
        "ERM barely above chance"
    );

    // Mild adversarial step: the paper notes aggressive AWP "caused
    // training failures", which a sibling test asserts; here we check the
    // benign regime trains.
    let awp_net = Box::new(Mlp::new(&MlpConfig::new(196, 10).hidden(48), &mut rng));
    let awp_cfg = TrainConfig {
        epochs: 12,
        lr: 0.05,
        ..cfg.clone()
    };
    let mut awp = train_awp(awp_net, &train, &awp_cfg, &AwpConfig { gamma: 0.01 });
    assert!(
        awp.accuracy(&test) > chance + 0.1,
        "AWP barely above chance"
    );

    let cb = Codebook::hadamard(10);
    let ftna_net = Box::new(Mlp::new(
        &MlpConfig::new(196, cb.bits()).hidden(48),
        &mut rng,
    ));
    let mut ftna = train_ftna(ftna_net, &train, &cfg, cb);
    assert!(
        ftna.accuracy(&test) > chance + 0.1,
        "FTNA barely above chance"
    );

    // ReRAM-V runs on the ERM model.
    let stats = reram_v_accuracy(&mut erm, &test, 0.5, 3, 1, &ReRamVConfig::default());
    assert!(stats.mean > 0.0 && stats.mean <= 1.0);
}

#[test]
fn lenet_trains_on_digit_images() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let data = digits(10, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let net = Box::new(LeNet5::new(1, 14, 10, &mut rng));
    // A few extra epochs over quick_cfg: conv nets occasionally need them
    // to escape a slow-starting init, and this test is about learnability,
    // not speed.
    let cfg = TrainConfig {
        epochs: 14,
        ..quick_cfg()
    };
    let mut model = train_erm(net, &train, &cfg);
    assert!(
        model.accuracy(&test) > 0.3,
        "LeNet should clear 3x chance on easy synthetic digits"
    );
}

#[test]
fn bayesft_search_improves_drift_robustness_on_moons() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let data = moons(400, 0.1, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);

    let erm_net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
    let mut erm = train_erm(
        erm_net,
        &train,
        &TrainConfig {
            epochs: 24,
            ..quick_cfg()
        },
    );

    let bft_net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
    let cfg = BayesFtConfig {
        trials: 8,
        epochs_per_trial: 3,
        mc_samples: 6,
        sigma: 0.8,
        train: quick_cfg(),
        ..BayesFtConfig::default()
    };
    let result = BayesFt::new(cfg).run(bft_net, &train, &test).unwrap();
    let mut bft = result.model;

    // Clean accuracy must stay competitive...
    let clean_erm = erm.accuracy(&test);
    let clean_bft = bft.accuracy(&test);
    assert!(
        clean_bft > clean_erm - 0.1,
        "search must not ruin clean accuracy: {clean_bft} vs {clean_erm}"
    );
    // ...and drifted accuracy should not collapse below ERM.
    let drift = LogNormalDrift::new(1.0);
    let e = drift_accuracy(&mut erm, &test, &drift, 10, 5).mean;
    let b = drift_accuracy(&mut bft, &test, &drift, 10, 5).mean;
    assert!(
        b >= e - 0.05,
        "BayesFT under drift ({b}) should not lose to ERM ({e})"
    );
}

#[test]
fn sweep_covers_paper_grid_and_decays() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let data = digits(10, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let net = Box::new(Mlp::new(&MlpConfig::new(196, 10).hidden(32), &mut rng));
    let mut model = train_erm(net, &train, &quick_cfg());
    let sweep = accuracy_vs_sigma(&mut model, &test, &SIGMA_GRID, 4, 1);
    assert_eq!(sweep.len(), 6);
    // σ=0 beats σ=1.5 — the universal shape of every curve in the paper.
    assert!(
        sweep[0].1.mean > sweep[5].1.mean,
        "no degradation from σ=0 ({}) to σ=1.5 ({})",
        sweep[0].1.mean,
        sweep[5].1.mean
    );
}

#[test]
fn dropout_architecture_is_more_drift_robust_than_plain() {
    // Fig. 2(a)'s claim as an integration test: same training budget, the
    // dropout MLP holds up better at substantial drift.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let data = digits(15, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let cfg = TrainConfig {
        epochs: 12,
        ..quick_cfg()
    };

    let plain_net = Box::new(Mlp::new(
        &MlpConfig::new(196, 10)
            .hidden(48)
            .dropout(models::DropoutKind::None),
        &mut rng,
    ));
    let mut plain = train_erm(plain_net, &train, &cfg);

    let drop_net = Box::new(Mlp::new(
        &MlpConfig::new(196, 10).hidden(48).initial_rate(0.3),
        &mut rng,
    ));
    let mut dropped = train_erm(drop_net, &train, &cfg);

    let drift = LogNormalDrift::new(0.9);
    let p = drift_accuracy(&mut plain, &test, &drift, 10, 11).mean;
    let d = drift_accuracy(&mut dropped, &test, &drift, 10, 11).mean;
    assert!(
        d > p - 0.05,
        "dropout net ({d}) should be at least as robust as plain ({p}) at σ=0.9"
    );
}
