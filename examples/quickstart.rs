//! Quickstart: search a fault-tolerant architecture for a small classifier
//! with the experiment engine and compare it with plain training under
//! memristance drift.
//!
//! Run: `cargo run --release --example quickstart`

use baselines::{drift_accuracy, train_erm, TrainConfig};
use bayesft::Engine;
use datasets::moons;
use models::{Mlp, MlpConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::LogNormalDrift;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: the two-moons toy task from the paper's Fig. 1.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = moons(400, 0.1, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);

    // 2. Baseline: plain empirical-risk minimization.
    let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
    let cfg = TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    };
    let mut erm = train_erm(net, &train, &cfg);

    // 3. BayesFT: alternate weight training with Bayesian optimization over
    //    per-layer dropout rates (Algorithm 1), via the fluent engine.
    //    Monte-Carlo drift samples fan out over all CPU cores
    //    (`parallelism(0)`); any worker count gives identical results.
    let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
    let result = Engine::builder()
        .trials(8)
        .epochs_per_trial(4)
        .mc_samples(6)
        .sigma(0.8)
        .train(cfg)
        .parallelism(0)
        .run(net, &train, &test)?;
    let mut bayesft_model = result.model;
    println!(
        "searched dropout rates (unit-cube alpha): {:?}",
        result.report.best_alpha
    );
    println!(
        "stage timings: train {:.0} ms, MC eval {:.0} ms ({} workers)",
        result.report.timings.train_ms, result.report.timings.eval_ms, result.report.parallelism
    );

    // 4. Deploy both on a drifting ReRAM device and compare.
    println!("\naccuracy under log-normal weight drift (mean of 10 devices):");
    println!("{:<8}{:>10}{:>10}", "sigma", "ERM", "BayesFT");
    for sigma in [0.0f32, 0.4, 0.8, 1.2] {
        let drift = LogNormalDrift::new(sigma);
        let e = drift_accuracy(&mut erm, &test, &drift, 10, 7).mean;
        let b = drift_accuracy(&mut bayesft_model, &test, &drift, 10, 7).mean;
        println!("{sigma:<8}{:>9.1}%{:>9.1}%", e * 100.0, b * 100.0);
    }

    // 5. The full run record serializes to JSON for downstream tooling.
    println!("\nrun report:\n{}", result.report.to_json_string_pretty());
    Ok(())
}
