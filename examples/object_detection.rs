//! Pedestrian detection under weight drift (the paper's Fig. 3(j)/Fig. 4
//! scenario): train the grid detector, drift its weights, and watch boxes
//! degrade — then recover robustness with dropout architecture search.
//!
//! Run: `cargo run --release --example object_detection`

use datasets::ped_scenes;
use metrics::{mean_average_precision, Detection};
use models::{DetectionLoss, TinyDetector};
use nn::{Layer, Mode, Optimizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{FaultInjector, LogNormalDrift};
use tensor::Tensor;

fn stack(data: &datasets::DetectionDataset) -> Tensor {
    let size = data.image_size();
    let mut buf = Vec::new();
    for scene in data.scenes() {
        buf.extend_from_slice(scene.image.as_slice());
    }
    Tensor::from_vec(buf, &[data.len(), 3, size, size]).expect("uniform scenes")
}

fn train(det: &mut TinyDetector, data: &datasets::DetectionDataset, epochs: usize) {
    let images = stack(data);
    let loss_fn = DetectionLoss::default();
    let mut opt = nn::Adam::new(0.01);
    for e in 0..epochs {
        let raw = det.forward(&images, Mode::Train);
        let (loss, grad) = loss_fn.loss_and_grad(&raw, data.scenes(), data.image_size());
        let _ = det.backward(&grad);
        opt.step(det);
        if e % 20 == 0 {
            println!("  epoch {e:>3}: loss {loss:.4}");
        }
    }
}

fn map_at(det: &mut TinyDetector, data: &datasets::DetectionDataset) -> f32 {
    let dets = det.detect(&stack(data), 0.5);
    let mut flat = Vec::new();
    for (image, per_image) in dets.into_iter().enumerate() {
        for (bbox, score) in per_image {
            flat.push(Detection { image, bbox, score });
        }
    }
    let gt: Vec<_> = data.scenes().iter().map(|s| s.boxes.clone()).collect();
    mean_average_precision(&flat, &gt)
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = ped_scenes(24, 24, 2, &mut rng);
    let (train_set, test_set) = data.split(0.75);

    println!(
        "training grid detector on {} synthetic street scenes…",
        train_set.len()
    );
    let mut det = TinyDetector::new(24, &mut rng);
    // A drift-robust dropout setting (found by the fig3_detection search).
    models::set_dropout_rates(&mut det, &[0.15, 0.15]);
    train(&mut det, &train_set, 60);

    println!("\nmAP@0.5 under log-normal weight drift:");
    println!("{:<8}{:>8}", "sigma", "mAP");
    for sigma in [0.0f32, 0.2, 0.4, 0.6] {
        let snapshot = FaultInjector::snapshot(&mut det);
        let mut sum = 0.0;
        let trials = 5;
        for t in 0..trials {
            let mut drift_rng = ChaCha8Rng::seed_from_u64(100 + t);
            FaultInjector::inject(&mut det, &LogNormalDrift::new(sigma), &mut drift_rng);
            sum += map_at(&mut det, &test_set);
            snapshot
                .restore(&mut det)
                .expect("snapshot was taken from this network");
        }
        println!("{sigma:<8}{:>7.1}%", sum / trials as f32 * 100.0);
    }
}
