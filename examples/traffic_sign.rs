//! Traffic-sign recognition with a spatial-transformer classifier under
//! drift (the paper's Fig. 3(i) scenario): 43 classes, randomized sign
//! geometry, BayesFT-searched dropout rates.
//!
//! Run: `cargo run --release --example traffic_sign`

use baselines::{drift_accuracy, train_erm, TrainConfig};
use bayesft::Engine;
use datasets::signs;
use models::StnClassifier;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::LogNormalDrift;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = signs(8, &mut rng); // 43 classes × 8 samples
    let (train, test) = data.split(0.8, &mut rng);
    let cfg = TrainConfig {
        epochs: 10,
        lr: 0.05,
        ..TrainConfig::default()
    };

    println!("training ERM spatial-transformer classifier (43 sign classes)…");
    let net = Box::new(StnClassifier::new(3, 16, 43, &mut rng));
    let mut erm = train_erm(net, &train, &cfg);

    println!("running BayesFT dropout-rate search…");
    let net = Box::new(StnClassifier::new(3, 16, 43, &mut rng));
    let result = Engine::builder()
        .trials(5)
        .epochs_per_trial(3)
        .mc_samples(4)
        .sigma(0.5)
        .train(cfg)
        .parallelism(0)
        .run(net, &train, &test)?;
    let mut bft = result.model;
    println!("searched rates: {:?}", result.report.best_alpha);

    println!("\n{:<8}{:>10}{:>10}", "sigma", "ERM", "BayesFT");
    for sigma in [0.0f32, 0.3, 0.6] {
        let drift = LogNormalDrift::new(sigma);
        let e = drift_accuracy(&mut erm, &test, &drift, 5, 9).mean;
        let b = drift_accuracy(&mut bft, &test, &drift, 5, 9).mean;
        println!("{sigma:<8}{:>9.1}%{:>9.1}%", e * 100.0, b * 100.0);
    }
    Ok(())
}
