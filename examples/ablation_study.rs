//! Architectural ablation (the paper's Fig. 2 in miniature): which
//! network components help or hurt robustness to memristance drift?
//!
//! Run: `cargo run --release --example ablation_study`

use baselines::{train_erm, TrainConfig};
use bayesft::accuracy_vs_sigma;
use datasets::digits;
use models::{DropoutKind, Mlp, MlpConfig};
use nn::NormKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = digits(40, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let cfg = TrainConfig {
        epochs: 12,
        ..TrainConfig::default()
    };
    let sigmas = [0.0f32, 0.5, 1.0];
    let base = || MlpConfig::new(196, 10).hidden(48);

    let variants: Vec<(&str, MlpConfig)> = vec![
        ("plain (no dropout)", base().dropout(DropoutKind::None)),
        ("dropout 0.3", base().initial_rate(0.3)),
        (
            "batch norm",
            base().norm(NormKind::Batch).dropout(DropoutKind::None),
        ),
        ("6 layers deep", base().depth(6).dropout(DropoutKind::None)),
    ];

    println!("accuracy (%) vs drift level — MLP variants on synthetic digits");
    print!("{:<22}", "variant");
    for s in sigmas {
        print!("{s:>8.1}");
    }
    println!();
    for (label, mlp_cfg) in variants {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Box::new(Mlp::new(&mlp_cfg, &mut rng));
        let mut model = train_erm(net, &train, &cfg);
        let sweep = accuracy_vs_sigma(&mut model, &test, &sigmas, 6, 3);
        print!("{label:<22}");
        for (_, stats) in sweep {
            print!("{:>8.1}", stats.mean * 100.0);
        }
        println!();
    }
    println!("\ntakeaway (matching the paper): dropout is the only component that helps;");
    println!("normalization and extra depth make drift damage worse.");
}
